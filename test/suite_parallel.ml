(* The Domains work pool.

   The pool's whole contract is: results come back in submission order,
   a raising task becomes an [Error] without taking the pool (or any
   other task) down, and running an experiment at [jobs > 1] yields
   exactly the rows the sequential run yields. Each property is tested
   directly, the last one against real [Core.Experiments] sweeps. *)

let check = Alcotest.check

exception Boom of int

(* Burn a task-dependent amount of CPU so parallel completions genuinely
   finish out of submission order before harvesting. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to 1 + (n mod 97) * 500 do
    acc := !acc + i
  done;
  !acc

let prop_order jobs =
  QCheck.Test.make
    ~name:(Printf.sprintf "map at jobs=%d preserves submission order" jobs)
    ~count:30
    QCheck.(list_of_size Gen.(0 -- 40) small_nat)
    (fun xs ->
      let f x =
        ignore (spin x);
        (x * 2) + 1
      in
      let expected = List.map f xs in
      let actual =
        Parallel.Pool.with_pool ~jobs (fun pool -> Parallel.Pool.map_exn pool f xs)
      in
      actual = expected)

let test_failure_isolation () =
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let tasks =
        [
          (fun () -> 10);
          (fun () -> raise (Boom 42));
          (fun () -> 30);
        ]
      in
      (match Parallel.Pool.run pool tasks with
      | [ Ok 10; Error f; Ok 30 ] ->
          check Alcotest.bool "the task's own exception is preserved" true
            (f.Parallel.Pool.f_exn = Boom 42)
      | _ -> Alcotest.fail "expected [Ok 10; Error _; Ok 30] in submission order");
      (* the failure poisoned nothing: the same pool keeps working *)
      check (Alcotest.list Alcotest.int) "pool usable after a failed task" [ 1; 2; 3 ]
        (Parallel.Pool.map_exn pool (fun x -> x) [ 1; 2; 3 ]))

let test_map_exn_reraises () =
  Alcotest.check_raises "map_exn re-raises the first failure" (Boom 7) (fun () ->
      Parallel.Pool.with_pool ~jobs:2 (fun pool ->
          ignore
            (Parallel.Pool.map_exn pool
               (fun x -> if x = 1 then raise (Boom 7) else x)
               [ 0; 1; 2 ])))

let test_submit_after_shutdown () =
  let pool = Parallel.Pool.create ~jobs:2 () in
  Parallel.Pool.shutdown pool;
  (try
     ignore (Parallel.Pool.map_exn pool (fun x -> x) [ 1 ]);
     Alcotest.fail "submit after shutdown should raise"
   with Invalid_argument _ -> ());
  (* shutdown is idempotent *)
  Parallel.Pool.shutdown pool

let test_progress_in_order () =
  let seen = ref [] in
  let results =
    Parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Parallel.Pool.map
          ~progress:(fun i -> seen := i :: !seen)
          pool
          (fun x -> ignore (spin x); x)
          [ 5; 3; 8; 1 ])
  in
  check (Alcotest.list Alcotest.int) "progress fires in submission order" [ 0; 1; 2; 3 ]
    (List.rev !seen);
  check Alcotest.int "all results harvested" 4 (List.length results)

let test_deadline () =
  (* a sleeping task past the pool deadline resolves to a structured
     [Error] instead of wedging the harvest; other tasks are untouched.
     The sleeper is short enough (1.5 s) that its domain finishes on its
     own before the process exits. *)
  Parallel.Pool.with_pool ~jobs:2 ~deadline_s:0.2 (fun pool ->
      let a = Parallel.Pool.submit ~label:"quick" pool (fun () -> 1) in
      let b = Parallel.Pool.submit ~label:"sleeper" pool (fun () -> Unix.sleepf 1.5; 2) in
      let c = Parallel.Pool.submit ~label:"quick2" pool (fun () -> 3) in
      check Alcotest.int "task before the sleeper unaffected" 1
        (match Parallel.Pool.await a with Ok v -> v | Error _ -> -1);
      (match Parallel.Pool.await b with
      | Error { Parallel.Pool.f_exn = Parallel.Pool.Deadline_exceeded { label; elapsed_s }; _ }
        ->
          check Alcotest.string "failure names the task" "sleeper" label;
          check Alcotest.bool "elapsed at least the deadline" true (elapsed_s >= 0.2)
      | Ok _ -> Alcotest.fail "sleeper should miss its deadline"
      | Error _ -> Alcotest.fail "expected Deadline_exceeded");
      check Alcotest.int "task after the sleeper unaffected" 3
        (match Parallel.Pool.await c with Ok v -> v | Error _ -> -1));
  (* give the sleeper's domain time to drain before later suites *)
  Unix.sleepf 1.5

(* The claim the whole bench/experiment wiring rests on: a sweep's rows
   are identical whatever the job count. *)

let test_experiments_jobs_equal () =
  let seq = Core.Experiments.fault_sweep_all ~scale:Apps.Registry.Small ~nprocs:4
      ~drops:[ 0.0; 0.2 ] ~jobs:1 ()
  and par = Core.Experiments.fault_sweep_all ~scale:Apps.Registry.Small ~nprocs:4
      ~drops:[ 0.0; 0.2 ] ~jobs:4 ()
  in
  check Alcotest.bool "fault sweep rows identical at jobs=1 and jobs=4" true (seq = par)

let test_figure5_jobs_equal () =
  let seq = Core.Experiments.figure5_both ~jobs:1 ()
  and par = Core.Experiments.figure5_both ~jobs:2 () in
  check Alcotest.bool "figure 5 rows identical at jobs=1 and jobs=2" true (seq = par)

let suite =
  [
    ( "parallel-pool",
      List.map QCheck_alcotest.to_alcotest [ prop_order 1; prop_order 2; prop_order 8 ]
      @ [
          Alcotest.test_case "raising task is isolated" `Quick test_failure_isolation;
          Alcotest.test_case "map_exn re-raises" `Quick test_map_exn_reraises;
          Alcotest.test_case "submit after shutdown" `Quick test_submit_after_shutdown;
          Alcotest.test_case "progress in submission order" `Quick test_progress_in_order;
          Alcotest.test_case "deadline turns a wedged task into Error" `Quick test_deadline;
          Alcotest.test_case "fault sweep equal across jobs" `Quick
            test_experiments_jobs_equal;
          Alcotest.test_case "figure 5 equal across jobs" `Quick test_figure5_jobs_equal;
        ] );
  ]
