(* Aggregates every test suite; run with `dune runtest`.

   The remote-executor suite spawns THIS binary as its worker
   processes, so the maybe_worker hook must run before Alcotest does —
   a child with CVM_REMOTE_WORKER set serves task frames and exits
   instead of recursively running the tests. *)

let () =
  Parallel.Remote.maybe_worker ~run:(Core.Tasks.runner ()) ();
  Alcotest.run "cvm-race"
    (Suite_sim.suite @ Suite_mem.suite @ Suite_proto.suite @ Suite_detector.suite
   @ Suite_lrc.suite @ Suite_detection.suite @ Suite_apps.suite @ Suite_instrument.suite
   @ Suite_dataflow.suite @ Suite_numerics.suite @ Suite_extra.suite @ Suite_litmus.suite
   @ Suite_extensions.suite @ Suite_faults.suite @ Suite_trace.suite
   @ Suite_parallel.suite @ Suite_remote.suite @ Suite_bench_compare.suite
   @ Suite_perf_equiv.suite @ Suite_mhp.suite @ Suite_cc.suite @ Suite_workload.suite)
