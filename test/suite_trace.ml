(* The record/replay subsystem: codec round-trips, recording is
   behavior-neutral, a pristine log replays cleanly for every app on a
   lossy wire, a single mutated event is pinpointed by index, and the
   race set + memory checksum reconstruct from the log alone. *)

let check = Alcotest.check

let sample_meta =
  {
    Trace.Codec.m_app = "sor";
    m_scale = "small";
    m_nprocs = 4;
    m_protocol = "single-writer";
    m_detect = true;
    m_first_race_only = false;
    m_stores_from_diffs = false;
    m_seed = 42;
    m_net_seed = Some 7;
    m_drop = 0.2;
    m_dup = 0.05;
    m_reorder = 0.1;
    m_reorder_window_ns = 400_000;
    m_spike = 0.01;
    m_spike_ns = 2_000_000;
    m_partitions = [ (0, 1, 5_000, 10_000); (2, 3, 0, max_int) ];
    m_transport =
      Some { Trace.Codec.v1_transport_defaults with Trace.Codec.tm_max_retries = 5 };
    m_watchdog_ns = Some 200_000_000;
    m_gc_epochs = Some 2;
    m_elide = true;
    m_backend = "lrc";
    m_cc_line_bytes = 64;
    m_cc_sets = 64;
    m_cc_ways = 2;
    m_sim_jobs = Some 4;
  }

(* ------------------------------------------------------------------ *)
(* Codec round-trip (property)                                          *)

let gen_event : Trace.Event.t QCheck.Gen.t =
  let open QCheck.Gen in
  let proc = int_bound 7 in
  let small = int_bound 1_000_000 in
  let kind_name = oneofl [ "page-req"; "diff-req"; "lock"; "barrier"; "x" ] in
  let pages = list_size (int_bound 4) (int_bound 255) in
  let vc = list_size (int_range 1 4) (int_bound 1000) >|= Array.of_list in
  let iid = map2 (fun proc index -> { Proto.Interval.proc; index }) proc (int_bound 1000) in
  let akind = oneofl [ Proto.Race.Read; Proto.Race.Write ] in
  let race =
    map2
      (fun (addr, page, word) ((a, ka), (b, kb), epoch) ->
        { Proto.Race.addr; page; word; first = (a, ka); second = (b, kb); epoch })
      (triple small (int_bound 255) (int_bound 511))
      (triple (pair iid akind) (pair iid akind) (int_bound 40))
  in
  let outcome =
    oneof
      [
        map2
          (fun copies extra_delay_ns -> Trace.Event.Passed { copies; extra_delay_ns })
          (int_range 1 3) small;
        return Trace.Event.Dropped;
        return Trace.Event.Blackholed;
      ]
  in
  oneof
    [
      map2
        (fun (src, dst) (kind, bytes) -> Trace.Event.Msg_send { src; dst; kind; bytes })
        (pair proc proc) (pair kind_name small);
      map2
        (fun (src, dst) (kind, bytes) -> Trace.Event.Msg_deliver { src; dst; kind; bytes })
        (pair proc proc) (pair kind_name small);
      map3 (fun src dst outcome -> Trace.Event.Fault { src; dst; outcome }) proc proc outcome;
      map3 (fun a b up -> Trace.Event.Partition { a; b; up }) proc proc bool;
      map3 (fun src dst seq -> Trace.Event.Retransmit { src; dst; seq }) proc proc small;
      map3 (fun src dst cum -> Trace.Event.Ack { src; dst; cum }) proc proc small;
      map2 (fun src dst -> Trace.Event.Link_failure { src; dst }) proc proc;
      map2 (fun proc label -> Trace.Event.Proc_block { proc; label }) proc kind_name;
      map (fun proc -> Trace.Event.Proc_resume { proc }) proc;
      map (fun proc -> Trace.Event.Proc_finish { proc }) proc;
      map3 (fun proc page kind -> Trace.Event.Page_fault { proc; page; kind }) proc
        (int_bound 255) akind;
      map3 (fun proc page count -> Trace.Event.Diff_fetch { proc; page; count }) proc
        (int_bound 255) small;
      map3 (fun proc page words -> Trace.Event.Diff_apply { proc; page; words }) proc
        (int_bound 255) small;
      map3 (fun proc lock vc -> Trace.Event.Lock_acquire { proc; lock; vc }) proc small vc;
      map3 (fun proc lock vc -> Trace.Event.Lock_release { proc; lock; vc }) proc small vc;
      map2 (fun proc epoch -> Trace.Event.Barrier_enter { proc; epoch }) proc small;
      map3 (fun proc epoch vc -> Trace.Event.Barrier_leave { proc; epoch; vc }) proc small vc;
      map3 (fun proc index epoch -> Trace.Event.Interval_open { proc; index; epoch }) proc
        small small;
      map3
        (fun (proc, index) epoch (write_pages, read_pages) ->
          Trace.Event.Interval_close { proc; index; epoch; write_pages; read_pages })
        (pair proc small) small (pair pages pages);
      map3 (fun a b pages -> Trace.Event.Check_entry { a; b; pages }) iid iid pages;
      map (fun race -> Trace.Event.Race race) race;
      map3
        (fun checksum sim_time_ns races -> Trace.Event.Run_end { checksum; sim_time_ns; races })
        (oneof [ small; return max_int; return min_int ])
        small (int_bound 100);
    ]

let arb_stream =
  QCheck.make
    ~print:(fun evs ->
      String.concat "; " (List.map (fun (t, e) -> Printf.sprintf "%d:%s" t (Trace.Event.to_string e)) evs))
    QCheck.Gen.(
      list_size (int_bound 40) (pair (int_bound 1_000_000) gen_event)
      >|= fun evs ->
      (* monotone absolute times, as the cluster produces them *)
      let t = ref 0 in
      List.map (fun (dt, e) -> t := !t + dt; (!t, e)) evs)

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec: decode (encode stream) = stream" ~count:200 arb_stream
    (fun stream ->
      let events = Array.of_list stream in
      let decoded = Trace.Codec.decode (Trace.Codec.encode sample_meta events) in
      decoded.Trace.Codec.meta = sample_meta
      && Array.length decoded.Trace.Codec.events = Array.length events
      && Array.for_all2
           (fun (t1, e1) (t2, e2) -> t1 = t2 && Trace.Event.equal e1 e2)
           decoded.Trace.Codec.events events)

let test_codec_rejects_garbage () =
  let corrupt s = match Trace.Codec.decode s with
    | _ -> false
    | exception Trace.Codec.Corrupt _ -> true
  in
  check Alcotest.bool "bad magic" true (corrupt "JUNKJUNKJUNK");
  check Alcotest.bool "empty" true (corrupt "");
  let log = Trace.Codec.encode sample_meta [| (0, Trace.Event.Proc_finish { proc = 0 }) |] in
  let truncated = String.sub log 0 (String.length log - 1) in
  check Alcotest.bool "truncated record" true (corrupt truncated);
  let wrong_version = Bytes.of_string log in
  Bytes.set wrong_version 4 '\xff';
  check Alcotest.bool "unsupported version" true (corrupt (Bytes.to_string wrong_version))

(* ------------------------------------------------------------------ *)
(* Recording must not perturb the run                                   *)

let lossy_cfg =
  {
    Lrc.Config.default with
    Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.drop = 0.2 };
    transport = Some Sim.Transport.default_config;
  }

let test_recording_is_behavior_neutral () =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small "sor" in
  let plain = Core.Driver.run ~cfg:lossy_cfg ~app ~nprocs:4 () in
  let traced, log =
    Core.Trace_run.record ~cfg:lossy_cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  check Alcotest.int "same simulated time" plain.Core.Driver.sim_time_ns
    traced.Core.Driver.sim_time_ns;
  check Alcotest.int "same memory checksum" plain.Core.Driver.mem_checksum
    traced.Core.Driver.mem_checksum;
  check Alcotest.bool "same races" true (plain.Core.Driver.races = traced.Core.Driver.races);
  check Alcotest.bool "log is non-trivial" true
    (Array.length (Trace.Codec.decode log).Trace.Codec.events > 100)

(* ------------------------------------------------------------------ *)
(* Record -> replay identity for every app under 20% drop              *)

let test_record_replay_identity name () =
  let _, log =
    Core.Trace_run.record ~cfg:lossy_cfg ~app_name:name ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let r = Core.Trace_run.replay log in
  (match r.Core.Trace_run.rr_divergence with
  | None -> ()
  | Some d -> Alcotest.failf "unexpected divergence: %s" (Format.asprintf "%a" Trace.Replay.pp_divergence d));
  check Alcotest.bool "race set matches log" true r.Core.Trace_run.rr_races_match;
  check Alcotest.bool "memory checksum matches log" true r.Core.Trace_run.rr_checksum_match;
  check Alcotest.bool "clean" true (Core.Trace_run.clean r)

(* ------------------------------------------------------------------ *)
(* First divergence: one mutated event is pinpointed by its index       *)

let test_first_divergence_pinpointed () =
  let _, log =
    Core.Trace_run.record ~cfg:lossy_cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let decoded = Trace.Codec.decode log in
  let events = Array.copy decoded.Trace.Codec.events in
  let k = Array.length events / 3 in
  let time, _ = events.(k) in
  (* an event the live run can never produce at this point *)
  events.(k) <- (time, Trace.Event.Link_failure { src = 6; dst = 7 });
  let mutated = Trace.Codec.encode decoded.Trace.Codec.meta events in
  let r = Core.Trace_run.replay mutated in
  match r.Core.Trace_run.rr_divergence with
  | None -> Alcotest.fail "mutation not detected"
  | Some d ->
      check Alcotest.int "first divergence at the mutated index" k d.Trace.Replay.d_index;
      (match d.Trace.Replay.d_expected with
      | Some (_, e) ->
          check Alcotest.bool "expected side is the mutated event" true
            (Trace.Event.equal e (Trace.Event.Link_failure { src = 6; dst = 7 }))
      | None -> Alcotest.fail "expected event missing from the report");
      check Alcotest.bool "actual side reported" true (d.Trace.Replay.d_actual <> None);
      let report = Format.asprintf "%a" Trace.Replay.pp_divergence d in
      check Alcotest.bool "report names the event index" true
        (Testutil.contains report (string_of_int k))

let test_truncated_live_stream_diverges () =
  (* verifier finish: a live run that ends short of the log is flagged *)
  let _, log =
    Core.Trace_run.record ~cfg:lossy_cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let decoded = Trace.Codec.decode log in
  let v = Trace.Replay.create decoded in
  let stop = Array.length decoded.Trace.Codec.events - 5 in
  Array.iteri
    (fun i (time, e) -> if i < stop then Trace.Replay.check v ~time e)
    decoded.Trace.Codec.events;
  match Trace.Replay.finish v with
  | None -> Alcotest.fail "short stream not flagged"
  | Some d ->
      check Alcotest.int "divergence at the first unmatched event" stop d.Trace.Replay.d_index;
      check Alcotest.bool "no actual event" true (d.Trace.Replay.d_actual = None)

(* ------------------------------------------------------------------ *)
(* Log-only reconstruction: race set and checksum without re-executing  *)

let test_log_only_reconstruction () =
  (* a racy body so the log actually carries Race events *)
  let cfg = { Testutil.detect_cfg with Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.drop = 0.15 };
              transport = Some Sim.Transport.default_config } in
  let meta = Core.Trace_run.meta_of ~app_name:"custom" ~scale:Apps.Registry.Small ~nprocs:4 cfg in
  let recorder = Trace.Sink.recorder meta in
  let cfg = { cfg with Lrc.Config.tracer = Some (Trace.Sink.sink recorder) } in
  let cluster = Lrc.Cluster.create ~cfg ~nprocs:4 ~pages:4 () in
  let racy = Lrc.Cluster.alloc cluster 8 in
  Lrc.Cluster.run cluster ~body:(fun node ->
      let open Lrc.Dsm in
      barrier node;
      if pid node = 0 then write_int node racy 1;
      if pid node = 3 then ignore (read_int node racy);
      barrier node);
  let live = Proto.Race.dedup (Lrc.Cluster.races cluster) in
  check Alcotest.bool "the body races" true (live <> []);
  (* Run_end is the driver's job; emit it here the same way *)
  Trace.Sink.emit (Trace.Sink.sink recorder)
    ~time:(Lrc.Cluster.sim_time cluster)
    (Trace.Event.Run_end
       {
         checksum = Lrc.Cluster.memory_checksum cluster;
         sim_time_ns = Lrc.Cluster.sim_time cluster;
         races = List.length live;
       });
  let decoded = Trace.Codec.decode (Trace.Sink.contents recorder) in
  let from_log = Trace.Replay.races_of_log decoded in
  check Alcotest.int "same race count from log alone" (List.length live)
    (List.length from_log);
  check Alcotest.bool "same races from log alone" true
    (List.for_all2 Proto.Race.equal live from_log);
  check
    (Alcotest.option Alcotest.int)
    "checksum from log alone"
    (Some (Lrc.Cluster.memory_checksum cluster))
    (Trace.Replay.checksum_of_log decoded);
  check
    (Alcotest.option Alcotest.int)
    "sim time from log alone"
    (Some (Lrc.Cluster.sim_time cluster))
    (Trace.Replay.sim_time_of_log decoded);
  let stats = Trace.Replay.stats_of_log decoded in
  let total = List.fold_left (fun acc s -> acc + s.Trace.Replay.ts_count) 0 stats in
  check Alcotest.int "stats cover every event" (Array.length decoded.Trace.Codec.events) total

(* ------------------------------------------------------------------ *)
(* Meta completeness: every config knob that changes the simulation is
   in the log, so replay can never silently run a different config.
   The gc-epochs case is the regression that motivated format v2: the
   cadence was missing from the meta, so a --gc-epochs recording
   replayed with GC off and diverged. *)

let test_gc_epochs_record_replay () =
  let cfg =
    {
      Lrc.Config.default with
      Lrc.Config.protocol = Lrc.Config.Multi_writer;
      gc_epochs = Some 2;
    }
  in
  let _, log =
    Core.Trace_run.record ~cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let decoded = Trace.Codec.decode log in
  check
    (Alcotest.option Alcotest.int)
    "GC cadence recorded in the meta" (Some 2)
    decoded.Trace.Codec.meta.Trace.Codec.m_gc_epochs;
  let r = Core.Trace_run.replay log in
  (match r.Core.Trace_run.rr_divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf "gc-epochs recording diverged on replay: %s"
        (Format.asprintf "%a" Trace.Replay.pp_divergence d));
  check Alcotest.bool "gc-epochs replay clean" true (Core.Trace_run.clean r)

let test_tuned_transport_record_replay () =
  let tuned =
    {
      Sim.Transport.initial_rto_ns = 2_500_000;
      max_rto_ns = 40_000_000;
      max_retries = 7;
      header_bytes = 20;
      ack_bytes = 48;
    }
  in
  let cfg =
    {
      Lrc.Config.default with
      Lrc.Config.fault = { Sim.Fault.none with Sim.Fault.drop = 0.2 };
      transport = Some tuned;
    }
  in
  let _, log =
    Core.Trace_run.record ~cfg ~app_name:"sor" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let m = (Trace.Codec.decode log).Trace.Codec.meta in
  (match m.Trace.Codec.m_transport with
  | None -> Alcotest.fail "transport config missing from the meta"
  | Some tm ->
      check Alcotest.int "initial RTO recorded" 2_500_000 tm.Trace.Codec.tm_initial_rto_ns;
      check Alcotest.int "RTO ceiling recorded" 40_000_000 tm.Trace.Codec.tm_max_rto_ns;
      check Alcotest.int "retry cap recorded" 7 tm.Trace.Codec.tm_max_retries;
      check Alcotest.int "header bytes recorded" 20 tm.Trace.Codec.tm_header_bytes;
      check Alcotest.int "ack bytes recorded" 48 tm.Trace.Codec.tm_ack_bytes);
  let r = Core.Trace_run.replay log in
  check Alcotest.bool "tuned-transport replay clean" true (Core.Trace_run.clean r)

(* Format v3 appends the instrumentation-elision flag: a log recorded
   with --elide must replay with the same derived elide set, and an
   elide-off log must decode with the flag unset. *)

let test_elide_record_replay () =
  let cfg = { Lrc.Config.default with Lrc.Config.elide_sites = Some [] } in
  let outcome, log =
    Core.Trace_run.record ~cfg ~app_name:"water" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  check Alcotest.bool "elision was active during recording" true
    (outcome.Core.Driver.stats.Sim.Stats.elided_checks > 0);
  let m = (Trace.Codec.decode log).Trace.Codec.meta in
  check Alcotest.bool "elide flag recorded in the meta" true m.Trace.Codec.m_elide;
  let r = Core.Trace_run.replay log in
  check Alcotest.bool "elided recording replays clean" true (Core.Trace_run.clean r);
  check Alcotest.bool "replay re-derived the elide set" true
    (r.Core.Trace_run.rr_outcome.Core.Driver.stats.Sim.Stats.elided_checks
    = outcome.Core.Driver.stats.Sim.Stats.elided_checks);
  (* and a plain recording says elide off *)
  let _, plain_log =
    Core.Trace_run.record ~app_name:"water" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  check Alcotest.bool "plain recording has the flag unset" false
    (Trace.Codec.decode plain_log).Trace.Codec.meta.Trace.Codec.m_elide

(* The live transport defaults must equal the constants frozen into the
   codec for format-v1 logs: if a default is ever tuned, the codec needs
   a new format version (and this pin updated deliberately). *)

let test_live_transport_defaults_still_frozen () =
  let live = Sim.Transport.default_config in
  let frozen = Trace.Codec.v1_transport_defaults in
  check Alcotest.int "initial_rto_ns" frozen.Trace.Codec.tm_initial_rto_ns
    live.Sim.Transport.initial_rto_ns;
  check Alcotest.int "max_rto_ns" frozen.Trace.Codec.tm_max_rto_ns live.Sim.Transport.max_rto_ns;
  check Alcotest.int "max_retries" frozen.Trace.Codec.tm_max_retries
    live.Sim.Transport.max_retries;
  check Alcotest.int "header_bytes" frozen.Trace.Codec.tm_header_bytes
    live.Sim.Transport.header_bytes;
  check Alcotest.int "ack_bytes" frozen.Trace.Codec.tm_ack_bytes live.Sim.Transport.ack_bytes;
  (* the frozen literals themselves, spelled out: changing either side
     must be a conscious act *)
  check Alcotest.int "frozen initial_rto_ns literal" 1_000_000
    frozen.Trace.Codec.tm_initial_rto_ns;
  check Alcotest.int "frozen max_rto_ns literal" 16_000_000 frozen.Trace.Codec.tm_max_rto_ns;
  check Alcotest.int "frozen max_retries literal" 20 frozen.Trace.Codec.tm_max_retries;
  check Alcotest.int "frozen header_bytes literal" 12 frozen.Trace.Codec.tm_header_bytes;
  check Alcotest.int "frozen ack_bytes literal" 32 frozen.Trace.Codec.tm_ack_bytes

(* `dune runtest` runs with the test directory as cwd; `dune exec
   test/test_main.exe` runs from the workspace root *)
let golden_file name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local else Filename.concat "test/golden" name

let test_v1_log_decodes_with_frozen_defaults () =
  (* the checked-in pre-optimization logs are format v1: no GC cadence
     existed when they were recorded, and their transport ran the
     defaults frozen in the codec — decoding must say so, not guess
     from today's defaults *)
  let decoded = Trace.Codec.decode (Core.Trace_run.load (golden_file "pre_opt_sor_drop.cvmt")) in
  let m = decoded.Trace.Codec.meta in
  check (Alcotest.option Alcotest.int) "v1 log has no GC cadence" None
    m.Trace.Codec.m_gc_epochs;
  (match m.Trace.Codec.m_transport with
  | None -> Alcotest.fail "lossy v1 log should carry a transport config"
  | Some tm ->
      check Alcotest.int "v1 frozen initial RTO"
        Trace.Codec.v1_transport_defaults.Trace.Codec.tm_initial_rto_ns
        tm.Trace.Codec.tm_initial_rto_ns;
      check Alcotest.int "v1 frozen header bytes"
        Trace.Codec.v1_transport_defaults.Trace.Codec.tm_header_bytes
        tm.Trace.Codec.tm_header_bytes)

let test_version_window_messages () =
  let msg_of s = match Trace.Codec.decode s with
    | _ -> "decoded successfully"
    | exception Trace.Codec.Corrupt msg -> msg
  in
  let log = Trace.Codec.encode sample_meta [| (0, Trace.Event.Proc_finish { proc = 0 }) |] in
  let with_version v =
    let b = Bytes.of_string log in
    Bytes.set b 4 (Char.chr v);
    Bytes.to_string b
  in
  let newer = msg_of (with_version (Trace.Codec.version + 1)) in
  check Alcotest.bool "future version says the log is too new" true
    (Testutil.contains newer "newer");
  let older = msg_of (with_version 0) in
  check Alcotest.bool "prehistoric version says the log is too old" true
    (Testutil.contains older "older")

(* ------------------------------------------------------------------ *)
(* Chrome export smoke                                                  *)

let test_chrome_export () =
  let _, log =
    Core.Trace_run.record ~cfg:lossy_cfg ~app_name:"fft" ~scale:Apps.Registry.Small ~nprocs:4 ()
  in
  let json = Trace.Chrome.export (Trace.Codec.decode log) in
  check Alcotest.bool "is a JSON array" true
    (String.length json > 2 && json.[0] = '[' && Testutil.contains json "]");
  check Alcotest.bool "names every processor track" true
    (Testutil.contains json "proc 0" && Testutil.contains json "proc 3");
  check Alcotest.bool "has begin slices" true (Testutil.contains json {|"ph":"B"|});
  check Alcotest.bool "has end slices" true (Testutil.contains json {|"ph":"E"|});
  check Alcotest.bool "has instants" true (Testutil.contains json {|"ph":"i"|});
  (* every B on a tid has a matching E: count them *)
  let count needle =
    let n = String.length needle and total = ref 0 in
    for i = 0 to String.length json - n do
      if String.sub json i n = needle then incr total
    done;
    !total
  in
  check Alcotest.int "slices balanced" (count {|"ph":"B"|}) (count {|"ph":"E"|})

let suite =
  [
    ( "trace:codec",
      [
        QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        Alcotest.test_case "corrupt logs rejected" `Quick test_codec_rejects_garbage;
      ] );
    ( "trace:replay",
      [
        Alcotest.test_case "recording is behavior-neutral" `Quick
          test_recording_is_behavior_neutral;
        Alcotest.test_case "record->replay: sor" `Quick (test_record_replay_identity "sor");
        Alcotest.test_case "record->replay: fft" `Quick (test_record_replay_identity "fft");
        Alcotest.test_case "record->replay: tsp" `Quick (test_record_replay_identity "tsp");
        Alcotest.test_case "record->replay: water" `Quick (test_record_replay_identity "water");
        Alcotest.test_case "record->replay: lu" `Quick (test_record_replay_identity "lu");
        Alcotest.test_case "mutated event pinpointed" `Quick test_first_divergence_pinpointed;
        Alcotest.test_case "short live stream flagged" `Quick
          test_truncated_live_stream_diverges;
      ] );
    ( "trace:meta",
      [
        Alcotest.test_case "gc-epochs recorded and replayed" `Quick
          test_gc_epochs_record_replay;
        Alcotest.test_case "tuned transport recorded and replayed" `Quick
          test_tuned_transport_record_replay;
        Alcotest.test_case "elide flag recorded and replayed" `Quick
          test_elide_record_replay;
        Alcotest.test_case "live transport defaults match frozen v1" `Quick
          test_live_transport_defaults_still_frozen;
        Alcotest.test_case "v1 log decodes with frozen defaults" `Quick
          test_v1_log_decodes_with_frozen_defaults;
        Alcotest.test_case "version window messages" `Quick test_version_window_messages;
      ] );
    ( "trace:offline",
      [
        Alcotest.test_case "race set + checksum from log alone" `Quick
          test_log_only_reconstruction;
        Alcotest.test_case "chrome export" `Quick test_chrome_export;
      ] );
  ]
