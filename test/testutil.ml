(* Shared helpers for the test suites. *)

let contains haystack needle =
  let hay_len = String.length haystack and needle_len = String.length needle in
  let rec scan i =
    i + needle_len <= hay_len && (String.sub haystack i needle_len = needle || scan (i + 1))
  in
  needle_len = 0 || scan 0

(* Run an SPMD body on a fresh cluster and return it for inspection. *)
let run_cluster ?(cfg = Lrc.Config.default) ?(cost = Sim.Cost.default) ?(nprocs = 4)
    ?(pages = 8) body =
  let cluster = Lrc.Cluster.create ~cost ~cfg ~nprocs ~pages () in
  Lrc.Cluster.run cluster ~body;
  cluster

let racy_addrs_of cluster =
  Lrc.Cluster.races cluster
  |> List.map (fun (r : Proto.Race.t) -> r.addr)
  |> List.sort_uniq compare

let detect_cfg = { Lrc.Config.default with Lrc.Config.detect = true; record_trace = true }

let addr_list = Alcotest.list (Alcotest.testable (fun ppf a -> Format.fprintf ppf "0x%x" a) ( = ))

(* ------------------------------------------------------------------ *)
(* Per-kernel expectations, shared by the LRC kernel suite
   (suite_litmus) and the bus-backend kernel suite (suite_cc): the
   number of racy addresses each protocol-stress kernel must exhibit is
   a property of the kernel, not of the machine underneath, so both
   suites must check against this one table. A kernel missing from the
   table fails loudly — add its entry here, once, for every suite. *)

let kernel_expected_races =
  [
    ("diff-cache-reuse", 1);
    ("gc-interval-rerequest", 1);
    ("write-notice-invalid", 0);
    ("lock-handoff-chain", 0);
    ("lock-chained-publish", 0);
    ("false-sharing-writers", 0);
    ("true-sharing-overlap", 1);
    ("multi-reader-race", 1);
    ("partially-locked", 1);
  ]

let expected_races (kernel : Litmus.kernel) =
  match List.assoc_opt kernel.Litmus.k_name kernel_expected_races with
  | Some n -> n
  | None ->
      Alcotest.failf
        "kernel %S has no entry in Testutil.kernel_expected_races — add its expected \
         racy-address count there so the LRC and CC suites stay in sync"
        kernel.Litmus.k_name

(* One Alcotest case per registered kernel: run it via [run] (which
   fixes the protocol or backend), require detector = oracle, and pin
   the racy-address count to the shared table. *)
let kernel_cases ~label ~run =
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun k -> k.Litmus.k_name = name) Litmus.kernels) then
        failwith
          (Printf.sprintf
             "Testutil.kernel_expected_races names %S but Litmus.kernels has no such \
              kernel — stale table entry"
             name))
    kernel_expected_races;
  List.map
    (fun (kernel : Litmus.kernel) ->
      let expected = expected_races kernel in
      Alcotest.test_case
        (Printf.sprintf "%s %s = oracle, %d racy" label kernel.Litmus.k_name expected)
        `Quick
        (fun () ->
          let outcome : Litmus.kernel_outcome = run kernel in
          Alcotest.check addr_list
            (kernel.Litmus.k_name ^ ": detector agrees with oracle")
            outcome.Litmus.oracle outcome.Litmus.detected;
          Alcotest.check Alcotest.int
            (Printf.sprintf "%s: %d racy address(es)" kernel.Litmus.k_name expected)
            expected
            (List.length outcome.Litmus.detected)))
    Litmus.kernels
