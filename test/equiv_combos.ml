(* The deterministic combo space behind the differential performance-
   equivalence suite.

   [all] enumerates (app, nprocs, protocol, detection flags, fault plan,
   seed) combinations, each cheap at the Small input scale. The golden
   generator ([gen_equiv_golden.exe]) runs every combo and records the
   observable outcome; the test suite ([suite_perf_equiv.ml]) re-runs
   randomly sampled combos and compares. Because both sides resolve a
   combo by its [label], the combo list can grow without invalidating old
   goldens — but editing an existing combo's definition requires
   regenerating the golden file (see docs/BENCH.md).

   The recorded outcome is everything the optimization must not change:
   the full race set (canonically ordered), the final memory checksum,
   simulated time, and the wire byte/message totals. *)

type combo = { label : string; app : string; nprocs : int; cfg : Lrc.Config.t }

let protocols =
  [
    ("sw", Lrc.Config.Single_writer);
    ("mw", Lrc.Config.Multi_writer);
    ("hb", Lrc.Config.Home_based);
  ]

let faulty drop =
  {
    Sim.Fault.none with
    Sim.Fault.drop;
    duplicate = drop /. 4.0;
    reorder = drop /. 2.0;
  }

let all : combo list =
  let base =
    (* every app under every protocol at two system sizes, default flags *)
    List.concat_map
      (fun app ->
        List.concat_map
          (fun (ptag, protocol) ->
            List.map
              (fun nprocs ->
                {
                  label = Printf.sprintf "%s-%s-p%d" app ptag nprocs;
                  app;
                  nprocs;
                  cfg = { Lrc.Config.default with Lrc.Config.protocol };
                })
              [ 4; 8 ])
          protocols)
      Apps.Registry.extended_names
  in
  let flag_variants =
    (* detection-mode switches the optimization touches *)
    List.concat_map
      (fun app ->
        [
          {
            label = Printf.sprintf "%s-mw-diffs-p4" app;
            app;
            nprocs = 4;
            cfg =
              {
                Lrc.Config.default with
                Lrc.Config.protocol = Lrc.Config.Multi_writer;
                stores_from_diffs = true;
              };
          };
          {
            label = Printf.sprintf "%s-first-race-p4" app;
            app;
            nprocs = 4;
            cfg = { Lrc.Config.default with Lrc.Config.first_race_only = true };
          };
          {
            label = Printf.sprintf "%s-sites-p4" app;
            app;
            nprocs = 4;
            cfg = { Lrc.Config.default with Lrc.Config.retain_sites = true };
          };
          {
            label = Printf.sprintf "%s-nodetect-p4" app;
            app;
            nprocs = 4;
            cfg = { Lrc.Config.default with Lrc.Config.detect = false };
          };
        ])
      Apps.Registry.all_names
  in
  let fault_variants =
    (* lossy wire behind the reliable transport, two loss rates, two
       network seeds: exercises retransmission interleavings *)
    List.concat_map
      (fun app ->
        List.concat_map
          (fun (dtag, drop) ->
            List.map
              (fun net_seed ->
                {
                  label = Printf.sprintf "%s-%s-net%d-p4" app dtag net_seed;
                  app;
                  nprocs = 4;
                  cfg =
                    {
                      Lrc.Config.default with
                      Lrc.Config.fault = faulty drop;
                      transport = Some Sim.Transport.default_config;
                      net_seed = Some net_seed;
                      watchdog_ns = Some 2_000_000_000;
                    };
                })
              [ 7; 1312 ])
          [ ("drop05", 0.05); ("drop20", 0.2) ])
      [ "sor"; "water"; "tsp" ]
  in
  let seed_variants =
    (* alternate scheduling seeds for the lock-heavy apps *)
    List.concat_map
      (fun app ->
        List.map
          (fun seed ->
            {
              label = Printf.sprintf "%s-seed%d-p8" app seed;
              app;
              nprocs = 8;
              cfg = { Lrc.Config.default with Lrc.Config.seed };
            })
          [ 1; 99 ])
      [ "tsp"; "water" ]
  in
  base @ flag_variants @ fault_variants @ seed_variants

let find label = List.find_opt (fun c -> c.label = label) all

(* ------------------------------------------------------------------ *)

type result = {
  races : string list;  (* canonical race strings, sorted *)
  mem_checksum : int;
  sim_time_ns : int;
  messages : int;
  bytes : int;
  read_notice_bytes : int;
  bitmap_round_bytes : int;
}

let race_string (r : Proto.Race.t) =
  let id_string (id : Proto.Interval.id) =
    Printf.sprintf "%d.%d" id.Proto.Interval.proc id.Proto.Interval.index
  in
  let kind_string = function Proto.Race.Read -> "r" | Proto.Race.Write -> "w" in
  Printf.sprintf "0x%x@e%d:%s%s-%s%s" r.Proto.Race.addr r.Proto.Race.epoch
    (id_string (fst r.Proto.Race.first))
    (kind_string (snd r.Proto.Race.first))
    (id_string (fst r.Proto.Race.second))
    (kind_string (snd r.Proto.Race.second))

let run (combo : combo) : result =
  let app = Apps.Registry.make ~scale:Apps.Registry.Small combo.app in
  let outcome = Core.Driver.run ~cfg:combo.cfg ~app ~nprocs:combo.nprocs () in
  let stats = outcome.Core.Driver.stats in
  {
    races =
      Proto.Race.dedup outcome.Core.Driver.races |> List.map race_string |> List.sort compare;
    mem_checksum = outcome.Core.Driver.mem_checksum;
    sim_time_ns = outcome.Core.Driver.sim_time_ns;
    messages = stats.Sim.Stats.messages;
    bytes = stats.Sim.Stats.bytes;
    read_notice_bytes = stats.Sim.Stats.read_notice_bytes;
    bitmap_round_bytes = stats.Sim.Stats.bitmap_round_bytes;
  }

let result_to_json (r : result) =
  let open Bench_json in
  Obj
    [
      ("races", List (List.map (fun s -> String s) r.races));
      ("mem_checksum", Int r.mem_checksum);
      ("sim_time_ns", Int r.sim_time_ns);
      ("messages", Int r.messages);
      ("bytes", Int r.bytes);
      ("read_notice_bytes", Int r.read_notice_bytes);
      ("bitmap_round_bytes", Int r.bitmap_round_bytes);
    ]

let result_of_json v =
  let open Bench_json in
  {
    races = to_list_exn (member "races" v) |> List.map to_string_exn;
    mem_checksum = to_int_exn (member "mem_checksum" v);
    sim_time_ns = to_int_exn (member "sim_time_ns" v);
    messages = to_int_exn (member "messages" v);
    bytes = to_int_exn (member "bytes" v);
    read_notice_bytes = to_int_exn (member "read_notice_bytes" v);
    bitmap_round_bytes = to_int_exn (member "bitmap_round_bytes" v);
  }

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>races: [%s]@ mem_checksum: %d@ sim_time_ns: %d@ messages: %d@ bytes: %d@ \
     read_notice_bytes: %d@ bitmap_round_bytes: %d@]"
    (String.concat "; " r.races)
    r.mem_checksum r.sim_time_ns r.messages r.bytes r.read_notice_bytes r.bitmap_round_bytes

let golden_path = "test/golden/perf_equiv.json"

let load_golden path =
  let v = Bench_json.of_file path in
  (match Bench_json.member "schema" v with
  | Bench_json.String "cvm-race-equiv/1" -> ()
  | _ -> failwith (Printf.sprintf "%s: not a cvm-race-equiv/1 file" path));
  Bench_json.to_list_exn (Bench_json.member "combos" v)
  |> List.map (fun entry ->
         ( Bench_json.to_string_exn (Bench_json.member "label" entry),
           result_of_json (Bench_json.member "result" entry) ))
