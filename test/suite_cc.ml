(* The cache-coherent bus backends (MESI, Dragon) against the same bar
   the LRC protocols clear: the online detector must agree with the
   offline happens-before oracle on every protocol-stress kernel, and
   the set of racy addresses an app exhibits must not depend on which
   coherence backend executed it — races are a property of the program,
   not of the machine underneath. *)

let check = Alcotest.check

let cc_backends = [ "mesi"; "dragon" ]

(* Kernels: detector == oracle under both bus protocols, with the
   per-kernel racy-address counts pinned by the table shared with
   suite_litmus (Testutil.kernel_expected_races). *)

(* ------------------------------------------------------------------ *)
(* Protocol character: the same kernel moves data differently under
   write-invalidate and write-update, and each backend's signature
   counters must show it. *)

let kernel_stats backend kernel =
  let cfg =
    kernel.Litmus.k_cfg
      { Coherence.Config.default with Coherence.Config.backend; detect = true }
  in
  let machine =
    Backends.create ~cfg ~nprocs:kernel.Litmus.k_nprocs ~pages:kernel.Litmus.k_pages ()
  in
  let base =
    machine.Coherence.Backend.alloc (kernel.Litmus.k_words * 8)
      ~name:("kernel:" ^ kernel.Litmus.k_name)
  in
  machine.Coherence.Backend.run (fun node -> kernel.Litmus.k_body ~base node);
  machine.Coherence.Backend.stats

let test_mesi_invalidates () =
  let stats = kernel_stats "mesi" Litmus.false_sharing_writers in
  check Alcotest.bool "bus carried transactions" true (stats.Sim.Stats.bus_transactions > 0);
  check Alcotest.bool "sharing caused invalidations" true (stats.Sim.Stats.invalidations > 0);
  check Alcotest.int "write-invalidate never broadcasts updates" 0
    stats.Sim.Stats.bus_updates;
  check Alcotest.int "no DSM messages on a bus machine" 0 stats.Sim.Stats.messages

let test_dragon_updates () =
  let stats = kernel_stats "dragon" Litmus.false_sharing_writers in
  check Alcotest.bool "bus carried transactions" true (stats.Sim.Stats.bus_transactions > 0);
  check Alcotest.bool "sharing caused word broadcasts" true (stats.Sim.Stats.bus_updates > 0);
  check Alcotest.int "write-update never invalidates" 0 stats.Sim.Stats.invalidations;
  check Alcotest.int "no DSM messages on a bus machine" 0 stats.Sim.Stats.messages

(* ------------------------------------------------------------------ *)
(* Registry and configuration edges. *)

let test_registry () =
  check (Alcotest.list Alcotest.string) "registry order" [ "lrc"; "mesi"; "dragon" ]
    Backends.all;
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " known") true (Backends.known name);
      check Alcotest.bool (name ^ " described") true (Backends.describe name <> None))
    Backends.all;
  check Alcotest.bool "unknown name rejected" false (Backends.known "mosi");
  Alcotest.check_raises "create rejects unknown backend"
    (Invalid_argument "unknown backend \"mosi\" (available: lrc, mesi, dragon)")
    (fun () ->
      ignore
        (Backends.create
           ~cfg:{ Coherence.Config.default with Coherence.Config.backend = "mosi" }
           ~nprocs:2 ~pages:2 ()))

let test_cc_rejects_faults () =
  let cfg =
    {
      Coherence.Config.default with
      Coherence.Config.backend = "mesi";
      fault = { Sim.Fault.none with Sim.Fault.drop = 0.5 };
    }
  in
  Alcotest.check_raises "bus backends have no lossy wire"
    (Invalid_argument
       "Machine.create: fault injection needs the DSM backend (a snooping bus has no \
        lossy wire)") (fun () -> ignore (Backends.create ~cfg ~nprocs:2 ~pages:2 ()))

let test_cc_rejects_bad_line () =
  let cfg =
    {
      Coherence.Config.default with
      Coherence.Config.backend = "dragon";
      cc_line_bytes = 48;
    }
  in
  Alcotest.check_raises "line size must be a power of two"
    (Invalid_argument
       "Machine.create: cc_line_bytes must be a power of two >= the word size")
    (fun () -> ignore (Backends.create ~cfg ~nprocs:2 ~pages:2 ()))

(* ------------------------------------------------------------------ *)
(* Property: for barrier-structured SPMD programs, the racy-address set
   is backend-independent. A random program writes random words in
   random barrier-separated rounds; whatever the machine underneath,
   the same address set must fall out of detection. *)

let random_program ~rounds ~words seed =
  (* deterministic per-(seed, round, proc) access list: a few reads and
     writes into a small shared array, some racy, some disjoint *)
  let acc = Hashtbl.hash in
  fun (node : Coherence.Node.t) base ->
    let pid = node.Coherence.Node.id in
    for round = 0 to rounds - 1 do
      for k = 0 to 3 do
        let h = acc (seed, round, pid, k) in
        let word = h mod words in
        let addr = base + (8 * word) in
        if h land 16 = 0 then
          node.Coherence.Node.write_word ~site:"prop:w" addr (Int64.of_int h)
        else ignore (node.Coherence.Node.read_word ~site:"prop:r" addr)
      done;
      node.Coherence.Node.barrier ()
    done

let racy_addrs_under ~backend ~nprocs ~words ~rounds seed =
  let cfg =
    {
      Coherence.Config.default with
      Coherence.Config.backend;
      detect = true;
      record_trace = true;
    }
  in
  let machine = Backends.create ~cfg ~nprocs ~pages:2 () in
  let base = machine.Coherence.Backend.alloc (words * 8) ~name:"prop" in
  let body = random_program ~rounds ~words seed in
  machine.Coherence.Backend.run (fun node -> body node base);
  let detected =
    machine.Coherence.Backend.races ()
    |> List.map (fun (r : Proto.Race.t) -> r.Proto.Race.addr)
    |> List.sort_uniq compare
  in
  let oracle =
    Racedetect.Oracle.racy_addrs ~nprocs (machine.Coherence.Backend.trace ())
  in
  (detected, oracle)

let prop_backend_independent =
  QCheck.Test.make ~count:30
    ~name:"racy-address set is backend-independent (and = oracle) for SPMD programs"
    QCheck.(quad (int_range 2 4) (int_range 4 16) (int_range 1 4) small_int)
    (fun (nprocs, words, rounds, seed) ->
      let runs =
        List.map
          (fun backend -> racy_addrs_under ~backend ~nprocs ~words ~rounds seed)
          Backends.all
      in
      List.for_all
        (fun (detected, oracle) ->
          detected = oracle && detected = fst (List.hd runs))
        runs)

let suite =
  [
    ( "cc:kernels",
      List.concat_map
        (fun backend ->
          Testutil.kernel_cases ~label:backend ~run:(fun kernel ->
              Litmus.run_kernel ~backend kernel))
        cc_backends );
    ( "cc:machine",
      [
        Alcotest.test_case "MESI invalidates, never updates" `Quick test_mesi_invalidates;
        Alcotest.test_case "Dragon updates, never invalidates" `Quick test_dragon_updates;
        Alcotest.test_case "backend registry" `Quick test_registry;
        Alcotest.test_case "faults rejected" `Quick test_cc_rejects_faults;
        Alcotest.test_case "bad line size rejected" `Quick test_cc_rejects_bad_line;
        QCheck_alcotest.to_alcotest prop_backend_independent;
      ] );
  ]
