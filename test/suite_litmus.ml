(* Memory-model litmus assertions, per protocol — the section 6.4 story
   made executable: LRC exhibits SC-forbidden outcomes exactly where
   synchronization is missing, sequential consistency never does, and
   proper locking restores SC outcomes under every protocol. *)

let check = Alcotest.check

let lrc_protocols =
  [
    ("single-writer", Lrc.Config.Single_writer);
    ("multi-writer", Lrc.Config.Multi_writer);
    ("home-based", Lrc.Config.Home_based);
  ]

let sc = Lrc.Config.Seq_consistent

(* a faster grid than the default for test time *)
let grid = [| 0.0; 250_000.0; 2_000_000.0 |]

let obs ?(grid = grid) protocol test outcome =
  Litmus.observable ~protocol ~grid test outcome

let test_late_publish_weak_under protocol () =
  check Alcotest.bool "LRC shows the stale read" true
    (obs protocol Litmus.message_passing_late_publish [ ("r1", 1); ("r2", 0) ])

let test_late_publish_forbidden_under_sc () =
  check Alcotest.bool "SC never shows the stale read" false
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing_late_publish
       [ ("r1", 1); ("r2", 0) ])

let test_mp_weak_forbidden_under_sc () =
  check Alcotest.bool "SC forbids r1=1,r2=0" false
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing [ ("r1", 1); ("r2", 0) ])

let test_mp_fresh_observable_under_sc () =
  check Alcotest.bool "SC can observe both writes" true
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing [ ("r1", 1); ("r2", 1) ])

let test_locked_mp_never_weak protocol () =
  let outcomes = Litmus.explore ~protocol ~grid Litmus.message_passing_synchronized in
  let weak = List.sort compare [ ("r1", 1); ("r2", 0) ] in
  check Alcotest.bool "locking forbids the weak outcome" false
    (List.mem weak (List.map (List.sort compare) outcomes));
  check Alcotest.bool "and the synchronized outcome is observable" true
    (obs protocol Litmus.message_passing_synchronized [ ("r1", 1); ("r2", 1) ])

let test_sb_weak_under protocol () =
  check Alcotest.bool "LRC shows store buffering" true
    (obs protocol Litmus.store_buffering [ ("r1", 0); ("r2", 0) ])

let test_sb_weak_forbidden_under_sc () =
  check Alcotest.bool "SC forbids r1=0,r2=0" false
    (obs ~grid:Litmus.default_grid sc Litmus.store_buffering [ ("r1", 0); ("r2", 0) ])

let test_coherence_never_backwards protocol () =
  let outcomes = Litmus.explore ~protocol ~grid:Litmus.default_grid Litmus.coherence_rr in
  let backwards = List.sort compare [ ("r1", 2); ("r2", 1) ] in
  check Alcotest.bool "reads never go backwards" false
    (List.mem backwards (List.map (List.sort compare) outcomes))

(* ------------------------------------------------------------------ *)
(* Protocol-stress kernels: detector == oracle under every LRC
   protocol, with the per-kernel racy-address counts pinned by the
   table shared with suite_cc (Testutil.kernel_expected_races). The
   kernel bodies self-check the values they read, so a wrong answer out
   of the diff cache, the interval GC or a lock handoff fails the run
   itself. *)

let addr_list = Testutil.addr_list

let test_gc_kernel_checksum_stable () =
  (* interval GC is a storage policy: running the same kernel with and
     without it must end in the same memory image *)
  let with_gc = Litmus.run_kernel Litmus.gc_interval_rerequest in
  let without =
    Litmus.run_kernel
      { Litmus.gc_interval_rerequest with Litmus.k_cfg = Fun.id }
  in
  check Alcotest.int "checksum unchanged by GC" without.Litmus.checksum
    with_gc.Litmus.checksum;
  check addr_list "races unchanged by GC" without.Litmus.detected with_gc.Litmus.detected

let test_run_rejects_bad_delays () =
  Alcotest.check_raises "delay per processor"
    (Invalid_argument "Litmus.run: delay per processor") (fun () ->
      ignore (Litmus.run ~delays:[| 0.0 |] Litmus.message_passing))

let suite =
  [
    ( "litmus",
      List.concat_map
        (fun (name, protocol) ->
          [
            Alcotest.test_case (name ^ " late-publish weak") `Quick
              (test_late_publish_weak_under protocol);
            Alcotest.test_case (name ^ " locked MP never weak") `Quick
              (test_locked_mp_never_weak protocol);
            Alcotest.test_case (name ^ " SB weak") `Quick (test_sb_weak_under protocol);
            Alcotest.test_case (name ^ " coherence") `Quick
              (test_coherence_never_backwards protocol);
          ])
        lrc_protocols
      @ [
          Alcotest.test_case "SC forbids late-publish weak" `Quick
            test_late_publish_forbidden_under_sc;
          Alcotest.test_case "SC forbids MP weak" `Quick test_mp_weak_forbidden_under_sc;
          Alcotest.test_case "SC observes MP fresh" `Quick test_mp_fresh_observable_under_sc;
          Alcotest.test_case "SC forbids SB weak" `Quick test_sb_weak_forbidden_under_sc;
          Alcotest.test_case "SC coherence" `Quick (test_coherence_never_backwards sc);
          Alcotest.test_case "bad delays rejected" `Quick test_run_rejects_bad_delays;
        ] );
    ( "litmus:kernels",
      List.concat_map
        (fun (name, protocol) ->
          Testutil.kernel_cases ~label:name ~run:(fun kernel ->
              Litmus.run_kernel ~protocol kernel))
        lrc_protocols
      @ [
          Alcotest.test_case "GC leaves checksum and races unchanged" `Quick
            test_gc_kernel_checksum_stable;
        ] );
  ]
