(* Memory-model litmus assertions, per protocol — the section 6.4 story
   made executable: LRC exhibits SC-forbidden outcomes exactly where
   synchronization is missing, sequential consistency never does, and
   proper locking restores SC outcomes under every protocol. *)

let check = Alcotest.check

let lrc_protocols =
  [
    ("single-writer", Lrc.Config.Single_writer);
    ("multi-writer", Lrc.Config.Multi_writer);
    ("home-based", Lrc.Config.Home_based);
  ]

let sc = Lrc.Config.Seq_consistent

(* a faster grid than the default for test time *)
let grid = [| 0.0; 250_000.0; 2_000_000.0 |]

let obs ?(grid = grid) protocol test outcome =
  Litmus.observable ~protocol ~grid test outcome

let test_late_publish_weak_under protocol () =
  check Alcotest.bool "LRC shows the stale read" true
    (obs protocol Litmus.message_passing_late_publish [ ("r1", 1); ("r2", 0) ])

let test_late_publish_forbidden_under_sc () =
  check Alcotest.bool "SC never shows the stale read" false
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing_late_publish
       [ ("r1", 1); ("r2", 0) ])

let test_mp_weak_forbidden_under_sc () =
  check Alcotest.bool "SC forbids r1=1,r2=0" false
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing [ ("r1", 1); ("r2", 0) ])

let test_mp_fresh_observable_under_sc () =
  check Alcotest.bool "SC can observe both writes" true
    (obs ~grid:Litmus.default_grid sc Litmus.message_passing [ ("r1", 1); ("r2", 1) ])

let test_locked_mp_never_weak protocol () =
  let outcomes = Litmus.explore ~protocol ~grid Litmus.message_passing_synchronized in
  let weak = List.sort compare [ ("r1", 1); ("r2", 0) ] in
  check Alcotest.bool "locking forbids the weak outcome" false
    (List.mem weak (List.map (List.sort compare) outcomes));
  check Alcotest.bool "and the synchronized outcome is observable" true
    (obs protocol Litmus.message_passing_synchronized [ ("r1", 1); ("r2", 1) ])

let test_sb_weak_under protocol () =
  check Alcotest.bool "LRC shows store buffering" true
    (obs protocol Litmus.store_buffering [ ("r1", 0); ("r2", 0) ])

let test_sb_weak_forbidden_under_sc () =
  check Alcotest.bool "SC forbids r1=0,r2=0" false
    (obs ~grid:Litmus.default_grid sc Litmus.store_buffering [ ("r1", 0); ("r2", 0) ])

let test_coherence_never_backwards protocol () =
  let outcomes = Litmus.explore ~protocol ~grid:Litmus.default_grid Litmus.coherence_rr in
  let backwards = List.sort compare [ ("r1", 2); ("r2", 1) ] in
  check Alcotest.bool "reads never go backwards" false
    (List.mem backwards (List.map (List.sort compare) outcomes))

(* ------------------------------------------------------------------ *)
(* Protocol-stress kernels: detector == oracle under every LRC
   protocol, plus pointed expectations per kernel. The kernel bodies
   self-check the values they read, so a wrong answer out of the diff
   cache, the interval GC or a lock handoff fails the run itself. *)

let addr_list =
  Alcotest.list (Alcotest.testable (fun ppf a -> Format.fprintf ppf "0x%x" a) ( = ))

let test_kernel_matches_oracle protocol kernel () =
  let outcome = Litmus.run_kernel ~protocol kernel in
  check addr_list
    (kernel.Litmus.k_name ^ ": detector agrees with oracle")
    outcome.Litmus.oracle outcome.Litmus.detected

let test_false_sharing_clean protocol () =
  let outcome = Litmus.run_kernel ~protocol Litmus.false_sharing_writers in
  check addr_list "word-granular detection reports no false sharing" []
    outcome.Litmus.detected

let test_lock_kernels_clean protocol () =
  List.iter
    (fun kernel ->
      let outcome = Litmus.run_kernel ~protocol kernel in
      check addr_list (kernel.Litmus.k_name ^ ": lock chains order everything") []
        outcome.Litmus.detected)
    [ Litmus.lock_handoff_chain; Litmus.lock_chained_publish ]

let test_invalid_page_notices_clean protocol () =
  let outcome = Litmus.run_kernel ~protocol Litmus.write_notice_invalid_page in
  check addr_list "stacked invalidations produce no races" [] outcome.Litmus.detected

let test_racy_kernels_report protocol () =
  List.iter
    (fun kernel ->
      let outcome = Litmus.run_kernel ~protocol kernel in
      check Alcotest.int
        (kernel.Litmus.k_name ^ ": exactly one racy address")
        1
        (List.length outcome.Litmus.detected))
    [
      Litmus.diff_cache_reuse;
      Litmus.gc_interval_rerequest;
      Litmus.true_sharing_overlap;
      Litmus.multi_reader_race;
      Litmus.partially_locked;
    ]

let test_gc_kernel_checksum_stable () =
  (* interval GC is a storage policy: running the same kernel with and
     without it must end in the same memory image *)
  let with_gc = Litmus.run_kernel Litmus.gc_interval_rerequest in
  let without =
    Litmus.run_kernel
      { Litmus.gc_interval_rerequest with Litmus.k_cfg = Fun.id }
  in
  check Alcotest.int "checksum unchanged by GC" without.Litmus.checksum
    with_gc.Litmus.checksum;
  check addr_list "races unchanged by GC" without.Litmus.detected with_gc.Litmus.detected

let test_run_rejects_bad_delays () =
  Alcotest.check_raises "delay per processor"
    (Invalid_argument "Litmus.run: delay per processor") (fun () ->
      ignore (Litmus.run ~delays:[| 0.0 |] Litmus.message_passing))

let suite =
  [
    ( "litmus",
      List.concat_map
        (fun (name, protocol) ->
          [
            Alcotest.test_case (name ^ " late-publish weak") `Quick
              (test_late_publish_weak_under protocol);
            Alcotest.test_case (name ^ " locked MP never weak") `Quick
              (test_locked_mp_never_weak protocol);
            Alcotest.test_case (name ^ " SB weak") `Quick (test_sb_weak_under protocol);
            Alcotest.test_case (name ^ " coherence") `Quick
              (test_coherence_never_backwards protocol);
          ])
        lrc_protocols
      @ [
          Alcotest.test_case "SC forbids late-publish weak" `Quick
            test_late_publish_forbidden_under_sc;
          Alcotest.test_case "SC forbids MP weak" `Quick test_mp_weak_forbidden_under_sc;
          Alcotest.test_case "SC observes MP fresh" `Quick test_mp_fresh_observable_under_sc;
          Alcotest.test_case "SC forbids SB weak" `Quick test_sb_weak_forbidden_under_sc;
          Alcotest.test_case "SC coherence" `Quick (test_coherence_never_backwards sc);
          Alcotest.test_case "bad delays rejected" `Quick test_run_rejects_bad_delays;
        ] );
    ( "litmus:kernels",
      List.concat_map
        (fun (name, protocol) ->
          List.map
            (fun (kernel : Litmus.kernel) ->
              Alcotest.test_case
                (Printf.sprintf "%s %s = oracle" name kernel.Litmus.k_name)
                `Quick
                (test_kernel_matches_oracle protocol kernel))
            Litmus.kernels
          @ [
              Alcotest.test_case (name ^ " false sharing clean") `Quick
                (test_false_sharing_clean protocol);
              Alcotest.test_case (name ^ " lock kernels clean") `Quick
                (test_lock_kernels_clean protocol);
              Alcotest.test_case (name ^ " invalid-page notices clean") `Quick
                (test_invalid_page_notices_clean protocol);
              Alcotest.test_case (name ^ " racy kernels report") `Quick
                (test_racy_kernels_report protocol);
            ])
        lrc_protocols
      @ [
          Alcotest.test_case "GC leaves checksum and races unchanged" `Quick
            test_gc_kernel_checksum_stable;
        ] );
  ]
