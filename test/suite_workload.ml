(* The adversarial workload frontier: trace-file frontend, seeded
   generator with by-construction ground truth, and the differential
   fuzzing harness (detector vs oracle vs ground truth, across every
   backend, with and without elision).

   The checked-in regression corpus under corpus/ replays on every
   `dune runtest`: each file must be internally consistent on every
   backend AND match its pinned racy set, so a detector regression a
   past fuzz run caught can never come back silently. *)

let check = Alcotest.check

let word_list = Alcotest.list Alcotest.int

let program name nprocs words streams =
  { Workload.Program.name; nprocs; words; streams = Array.of_list streams }

let roundtrips p =
  Workload.Program.equal p
    (Workload.Trace_file.parse_string (Workload.Trace_file.to_string p))

(* ------------------------------------------------------------------ *)
(* Program representation and validation *)

let test_validate_rejects () =
  let open Workload.Program in
  let expect_invalid label p =
    match validate p with
    | () -> Alcotest.failf "%s: validate accepted an invalid program" label
    | exception Invalid _ -> ()
  in
  expect_invalid "stream count" (program "t" 2 1 [ [ Read 0 ] ]);
  expect_invalid "word range" (program "t" 1 2 [ [ Write 2 ] ]);
  expect_invalid "unbalanced barriers" (program "t" 2 1 [ [ Barrier ]; [] ]);
  expect_invalid "re-acquire" (program "t" 1 1 [ [ Lock 0; Lock 0; Unlock 0; Unlock 0 ] ]);
  expect_invalid "unlock not held" (program "t" 1 1 [ [ Unlock 0 ] ]);
  expect_invalid "lock across barrier" (program "t" 1 1 [ [ Lock 0; Barrier; Unlock 0 ] ]);
  expect_invalid "lock past stream end" (program "t" 1 1 [ [ Lock 0 ] ]);
  (* and the well-formed shapes pass *)
  validate (program "t" 2 2 [ [ Lock 0; Write 0; Unlock 0; Barrier ]; [ Read 1; Barrier ] ])

let test_program_measures () =
  let open Workload.Program in
  let p =
    program "t" 2 2 [ [ Lock 0; Write 0; Unlock 0; Barrier; Read 1 ]; [ Barrier; Write 1 ] ]
  in
  check Alcotest.int "size counts every event" 7 (size p);
  check Alcotest.int "phases = barriers per stream" 1 (phases p);
  check
    Alcotest.(list (pair int int))
    "accesses in stream order"
    [ (0, 1); (0, 4); (1, 1) ]
    (List.map (fun (p, i, _, _) -> (p, i)) (accesses p))

(* ------------------------------------------------------------------ *)
(* Trace-file frontend *)

let test_trace_parse_basic () =
  let p =
    Workload.Trace_file.parse_string
      "# comment\nname demo\nprocs 2\nwords 3\n0 w 0\n1 r 2\nb\n0 l 1\n0 w 1\n0 u 1\n"
  in
  check Alcotest.string "name directive" "demo" p.Workload.Program.name;
  check Alcotest.int "procs" 2 p.Workload.Program.nprocs;
  check Alcotest.int "words" 3 p.Workload.Program.words;
  check Alcotest.int "bare b reaches every stream" 1 (Workload.Program.phases p);
  check Alcotest.int "events" 7 (Workload.Program.size p)

let test_trace_parse_errors () =
  let expect_error label ~line text =
    match Workload.Trace_file.parse_string text with
    | _ -> Alcotest.failf "%s: parse accepted bad input" label
    | exception Workload.Trace_file.Parse_error e ->
        check Alcotest.int (label ^ ": error line") line e.line
  in
  expect_error "event before procs" ~line:1 "0 w 0\n";
  expect_error "missing words" ~line:2 "procs 2\n0 w 0\n";
  expect_error "bad op" ~line:3 "procs 2\nwords 1\n0 x 0\n";
  expect_error "proc out of range" ~line:3 "procs 2\nwords 1\n2 w 0\n";
  expect_error "non-integer" ~line:3 "procs 2\nwords 1\n0 w zero\n";
  expect_error "malformed line" ~line:3 "procs 2\nwords 1\n0 w\n";
  expect_error "duplicate procs" ~line:2 "procs 2\nprocs 2\n";
  (* whole-file failures blame the last line carrying a token, never a
     nonexistent "line 0" *)
  expect_error "lock discipline" ~line:3 "procs 1\nwords 1\n0 u 0\n";
  expect_error "missing procs entirely" ~line:1 "words 1\n";
  expect_error "missing words, trailing blanks skipped" ~line:1 "procs 2\n\n\n";
  expect_error "empty file" ~line:1 "";
  (* a validation failure names the program it rejects *)
  (match Workload.Trace_file.parse_string ~name:"fallback" "name held\nprocs 1\nwords 1\n0 l 0\n" with
  | _ -> Alcotest.fail "lock held past stream end accepted"
  | exception Workload.Trace_file.Parse_error e ->
      check Alcotest.int "validation failure blames the last line" 4 e.line;
      check Alcotest.bool
        (Printf.sprintf "validation message %S names the program" e.msg)
        true
        (String.length e.msg >= 4 && String.sub e.msg 0 4 = "held"))

let test_trace_name_forms () =
  let parse = Workload.Trace_file.parse_string in
  let name_of text = (parse text).Workload.Program.name in
  let header = "procs 1\nwords 1\n" in
  check Alcotest.string "unquoted name takes the rest of the line" "two words"
    (name_of ("name two words\n" ^ header));
  check Alcotest.string "unquoted name stops at a comment" "demo"
    (name_of ("name demo # the demo trace\n" ^ header));
  check Alcotest.string "quoted name keeps a hash" "demo #3"
    (name_of ("name \"demo #3\"\n" ^ header));
  check Alcotest.string "quoted name keeps boundary spaces" " padded "
    (name_of ("name \" padded \"\n" ^ header));
  check Alcotest.string "quoted escapes decode" "a\"b\\c\nd\te"
    (name_of ("name \"a\\\"b\\\\c\\nd\\te\"\n" ^ header));
  check Alcotest.string "comment allowed after quoted name" "q"
    (name_of ("name \"q\" # ok\n" ^ header));
  let expect_error label text =
    match parse text with
    | _ -> Alcotest.failf "%s: parse accepted bad input" label
    | exception Workload.Trace_file.Parse_error e ->
        check Alcotest.int (label ^ ": error on the name line") 1 e.line
  in
  expect_error "bare name directive" ("name\n" ^ header);
  expect_error "comment-only name" ("name # nothing\n" ^ header);
  expect_error "unterminated quote" ("name \"open\n" ^ header);
  expect_error "dangling escape" ("name \"tail\\\n" ^ header);
  expect_error "unknown escape" ("name \"a\\qb\"\n" ^ header);
  expect_error "junk after quoted name" ("name \"q\" junk\n" ^ header)

(* The round-trip property the writer must uphold for ANY name: quote
   or escape whatever the unquoted reader would truncate or trim. The
   alphabet concentrates on the hostile characters — hash, quote,
   backslash, whitespace — far past their natural frequency. *)
let prop_name_roundtrips =
  let gen_name =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ '#'; '"'; '\\'; ' '; '\t'; '\n'; '\r'; 'a'; 'Z'; '7'; '_' ])
        (int_bound 12))
  in
  QCheck.Test.make ~name:"trace-file name round-trips (adversarial)" ~count:500
    (QCheck.make ~print:(Printf.sprintf "%S") gen_name)
    (fun name ->
      let p =
        program name 2 2
          [ [ Workload.Program.Write 0; Workload.Program.Barrier ];
            [ Workload.Program.Read 1; Workload.Program.Barrier ] ]
      in
      roundtrips p)

let test_trace_roundtrip_handwritten () =
  let open Workload.Program in
  let p =
    program "rt" 3 4
      [
        [ Write 0; Barrier; Lock 0; Read 1; Unlock 0; Barrier ];
        [ Barrier; Read 0; Barrier; Write 3 ];
        [ Lock 1; Write 2; Unlock 1; Barrier; Barrier ];
      ]
  in
  validate p;
  check Alcotest.bool "hand-written program round-trips" true (roundtrips p)

let test_trace_roundtrip_generated () =
  for index = 0 to 19 do
    let g = Workload.Generator.generate_seeded ~seed:42 ~index () in
    if not (roundtrips g.Workload.Generator.program) then
      Alcotest.failf "generated program %d does not round-trip:@.%a" index
        Workload.Program.pp g.Workload.Generator.program
  done

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generator_deterministic () =
  let a = Workload.Generator.generate_seeded ~seed:9 ~index:4 () in
  let b = Workload.Generator.generate_seeded ~seed:9 ~index:4 () in
  check Alcotest.bool "same (seed, index) draws the same program" true
    (Workload.Program.equal a.Workload.Generator.program b.Workload.Generator.program);
  check word_list "and the same ground truth" a.Workload.Generator.racy
    b.Workload.Generator.racy;
  let c = Workload.Generator.generate_seeded ~seed:9 ~index:5 () in
  check Alcotest.bool "a different index draws a different program" false
    (Workload.Program.equal a.Workload.Generator.program c.Workload.Generator.program)

let test_generator_valid_and_labeled () =
  for index = 0 to 19 do
    let g = Workload.Generator.generate_seeded ~seed:7 ~index () in
    let p = g.Workload.Generator.program in
    Workload.Program.validate p;
    check Alcotest.int
      (Printf.sprintf "program %d: one role per word" index)
      p.Workload.Program.words
      (Array.length g.Workload.Generator.role);
    List.iter
      (fun w ->
        check Alcotest.bool
          (Printf.sprintf "program %d: racy word %d labeled racy" index w)
          true
          (String.length g.Workload.Generator.role.(w) >= 4
          && String.sub g.Workload.Generator.role.(w) 0 4 = "racy"))
      g.Workload.Generator.racy
  done

(* The tentpole property: for every generated program, the online
   detector, the offline oracle and the by-construction ground truth
   agree exactly, on every backend, with and without elision. *)
let test_generator_differential () =
  for index = 0 to 7 do
    let g = Workload.Generator.generate_seeded ~seed:2026 ~index () in
    match
      Workload.Harness.check ~runner:Workload.Harness.driver_runner
        ~ground_truth:g.Workload.Generator.racy g.Workload.Generator.program
    with
    | None -> ()
    | Some m ->
        Alcotest.failf "program %d: %s mismatch: %s@.%a" index
          (Workload.Harness.kind_name m.Workload.Harness.kind)
          m.Workload.Harness.detail Workload.Program.pp g.Workload.Generator.program
  done

(* ------------------------------------------------------------------ *)
(* Harness: a deliberately planted detector bug must be caught, shrunk
   to a tiny repro, and that repro must replay clean under the real
   detector once written out and parsed back — the full corpus cycle. *)

let buggy_runner ~backend ~elide p =
  let r = Workload.Harness.driver_runner ~backend ~elide p in
  if backend = "mesi" then
    {
      r with
      Workload.Harness.detected =
        (match r.Workload.Harness.detected with _ :: tl -> tl | [] -> []);
    }
  else r

let test_planted_bug_caught_and_shrunk () =
  let report =
    Workload.Harness.fuzz ~runner:buggy_runner ~seed:1 ~count:4 ~shrink:true ()
  in
  check Alcotest.bool "the planted bug is caught" true
    (report.Workload.Harness.mismatches <> []);
  List.iter
    (fun (m : Workload.Harness.mismatch) ->
      check Alcotest.bool "internal (shrinkable) mismatch kind" true
        (Workload.Harness.shrinkable m.Workload.Harness.kind);
      let size = Workload.Program.size m.Workload.Harness.program in
      if size > 10 then
        Alcotest.failf "repro not minimized: %d events@.%a" size Workload.Program.pp
          m.Workload.Harness.program;
      (* corpus cycle: write as a trace file, parse back, and require
         the real detector to pass on the minimized repro *)
      let text = Workload.Trace_file.to_string m.Workload.Harness.program in
      let replayed = Workload.Trace_file.parse_string text in
      check Alcotest.bool "repro round-trips" true
        (Workload.Program.equal m.Workload.Harness.program replayed);
      match Workload.Harness.check ~runner:Workload.Harness.driver_runner replayed with
      | None -> ()
      | Some mm ->
          Alcotest.failf "minimized repro fails under the real detector: %s"
            mm.Workload.Harness.detail)
    report.Workload.Harness.mismatches;
  check Alcotest.bool "shrinking did real work" true
    (report.Workload.Harness.shrink_steps > 0)

let test_clean_fuzz_run () =
  let report = Workload.Harness.fuzz ~seed:11 ~count:5 ~shrink:true () in
  check Alcotest.int "no mismatches" 0 (List.length report.Workload.Harness.mismatches);
  check Alcotest.int "every planted race found" report.Workload.Harness.planted
    report.Workload.Harness.found;
  check Alcotest.int "all programs checked" 5 report.Workload.Harness.programs

(* ------------------------------------------------------------------ *)
(* Static passes on generated programs: the MHP analysis now sees
   multi-processor, lock-nested, multi-phase programs (not just the
   straight-line 2-proc enumeration of suite_mhp), and its elision
   verdicts must stay sound: no site it calls race-free may dynamically
   race. *)

let test_mhp_sound_on_generated () =
  for index = 0 to 11 do
    let g = Workload.Generator.generate_seeded ~seed:31 ~index () in
    let p = g.Workload.Generator.program in
    let race_free = Instrument.Mhp.race_free_sites (Workload.Program.binary p) in
    (* sites whose word is racy by construction *)
    let racy_sites =
      List.filter_map
        (fun (proc, i, _, w) ->
          if List.mem w g.Workload.Generator.racy then
            Some (Workload.Program.site ~proc ~index:i)
          else None)
        (Workload.Program.accesses p)
    in
    List.iter
      (fun site ->
        if List.mem site race_free then
          Alcotest.failf
            "program %d: MHP calls site %s race-free but its word races by \
             construction@.%a"
            index site Workload.Program.pp p)
      racy_sites
  done

(* ------------------------------------------------------------------ *)
(* Regression corpus: every checked-in trace replays with full internal
   consistency AND matches its pinned racy set. When a fuzz run finds a
   bug, its minimized repro joins corpus/ and this table. *)

let corpus_expectations =
  [
    ("mp-unsync", [ 0; 1 ]);
    ("locked-counter", []);
    ("false-sharing", []);
    ("min-repro-ww", [ 0 ]);
  ]

let test_corpus_replays_clean () =
  (* cwd is test/ under `dune runtest`, the repo root under `dune exec` *)
  let dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  check Alcotest.bool "corpus is not empty" true (files <> []);
  List.iter
    (fun file ->
      let p = Workload.Trace_file.parse_file (Filename.concat dir file) in
      (* every corpus file must have a pinned expectation *)
      let expected =
        match List.assoc_opt p.Workload.Program.name corpus_expectations with
        | Some e -> e
        | None ->
            Alcotest.failf
              "corpus file %s (program %S) has no entry in corpus_expectations — pin \
               its racy set"
              file p.Workload.Program.name
      in
      (match Workload.Harness.check ~runner:Workload.Harness.driver_runner ~ground_truth:expected p with
      | None -> ()
      | Some m ->
          Alcotest.failf "corpus %s: %s: %s" file
            (Workload.Harness.kind_name m.Workload.Harness.kind)
            m.Workload.Harness.detail);
      check Alcotest.bool (file ^ " round-trips") true (roundtrips p))
    files

let suite =
  [
    ( "workload:program",
      [
        Alcotest.test_case "validate rejects bad programs" `Quick test_validate_rejects;
        Alcotest.test_case "size / phases / accesses" `Quick test_program_measures;
      ] );
    ( "workload:trace",
      [
        Alcotest.test_case "parse basics" `Quick test_trace_parse_basic;
        Alcotest.test_case "parse errors carry line numbers" `Quick test_trace_parse_errors;
        Alcotest.test_case "name directive forms" `Quick test_trace_name_forms;
        QCheck_alcotest.to_alcotest prop_name_roundtrips;
        Alcotest.test_case "hand-written round-trip" `Quick test_trace_roundtrip_handwritten;
        Alcotest.test_case "generated round-trip (20 seeds)" `Quick
          test_trace_roundtrip_generated;
      ] );
    ( "workload:generator",
      [
        Alcotest.test_case "deterministic in (seed, index)" `Quick
          test_generator_deterministic;
        Alcotest.test_case "valid and role-labeled (20 seeds)" `Quick
          test_generator_valid_and_labeled;
        Alcotest.test_case "detector = oracle = ground truth, all backends" `Slow
          test_generator_differential;
      ] );
    ( "workload:harness",
      [
        Alcotest.test_case "planted detector bug caught, shrunk to <= 10 events" `Slow
          test_planted_bug_caught_and_shrunk;
        Alcotest.test_case "clean fuzz run finds every planted race" `Slow
          test_clean_fuzz_run;
        Alcotest.test_case "MHP elision sound on generated programs" `Quick
          test_mhp_sound_on_generated;
      ] );
    ( "workload:corpus",
      [ Alcotest.test_case "regression corpus replays clean" `Quick test_corpus_replays_clean ] );
  ]
