(* The benchmark regression gate's decision logic (Compare_core), on
   synthetic runs. The CLI is a thin wrapper, so these cover everything
   that decides the exit code. *)

let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let entry ?(wall = 1.0) ?(races = 3) ?(checksum = 0xbeef) ?(sim = 5_000) ?(bytes = 4096)
    ?(nprocs = 8) ?(backend = "lrc") ?(sim_jobs = 0) ?(extras = []) name =
  {
    Compare_core.key =
      (name, "small", nprocs, true, false, "single-writer", backend, sim_jobs);
    wall_s = wall;
    sim_time_ns = sim;
    races;
    mem_checksum = checksum;
    bytes;
    extras;
  }

let gate ?threshold_pct ?ignore_wall ?ignore_sim_jobs baseline current =
  Compare_core.compare_runs ?threshold_pct ?ignore_wall ?ignore_sim_jobs ~baseline ~current ()

let test_identical_passes () =
  let run = [ entry "sor"; entry "fft" ] in
  let r = gate run run in
  check Alcotest.bool "identical runs pass" true (Compare_core.passed r);
  check Alcotest.int "both entries compared" 2 r.Compare_core.compared

let test_missing_baseline_entry_fails () =
  (* a sweep point that silently disappears from the current run must
     fail the gate, not print a note *)
  let baseline = [ entry "sor"; entry "fft" ] and current = [ entry "sor" ] in
  let r = gate baseline current in
  check Alcotest.bool "missing entry fails" false (Compare_core.passed r);
  check Alcotest.int "exactly one failure" 1 r.Compare_core.failures;
  check Alcotest.bool "the failure names the missing point" true
    (List.exists
       (fun l ->
         String.length l >= 4 && String.sub l 0 4 = "FAIL"
         && contains l "missing from current run")
       r.Compare_core.lines)

let test_extra_current_entry_passes () =
  (* the other direction — the suite grew — is fine *)
  let baseline = [ entry "sor" ] and current = [ entry "sor"; entry "fft" ] in
  let r = gate baseline current in
  check Alcotest.bool "extra current entry passes" true (Compare_core.passed r)

let test_wall_regression_fails () =
  let baseline = [ entry ~wall:1.0 "sor" ] and current = [ entry ~wall:1.5 "sor" ] in
  let r = gate ~threshold_pct:15.0 baseline current in
  check Alcotest.bool "50% slower fails a 15% threshold" false (Compare_core.passed r)

let test_wall_noise_floor () =
  (* huge ratio, tiny absolute drift: under the 50 ms floor, never fails *)
  let baseline = [ entry ~wall:0.010 "sor" ] and current = [ entry ~wall:0.040 "sor" ] in
  let r = gate ~threshold_pct:15.0 baseline current in
  check Alcotest.bool "sub-noise-floor drift passes" true (Compare_core.passed r)

let test_ignore_wall () =
  let baseline = [ entry ~wall:1.0 "sor" ] and current = [ entry ~wall:10.0 "sor" ] in
  let r = gate ~ignore_wall:true baseline current in
  check Alcotest.bool "--ignore-wall skips the wall check" true (Compare_core.passed r)

let test_deterministic_drift_fails_despite_ignore_wall () =
  let baseline = [ entry ~races:3 "sor" ] and current = [ entry ~races:4 "sor" ] in
  let r = gate ~ignore_wall:true baseline current in
  check Alcotest.bool "race-count drift fails even with --ignore-wall" false
    (Compare_core.passed r)

let test_checksum_drift_fails () =
  let baseline = [ entry ~checksum:1 "sor" ] and current = [ entry ~checksum:2 "sor" ] in
  check Alcotest.bool "checksum drift fails" false (Compare_core.passed (gate baseline current))

let test_nothing_comparable_fails () =
  let r = gate [ entry "sor" ~nprocs:4 ] [ entry "sor" ~nprocs:8 ] in
  check Alcotest.int "no shared keys" 0 r.Compare_core.compared;
  check Alcotest.bool "an empty comparison never passes" false (Compare_core.passed r)

let fail_lines r =
  List.filter
    (fun l -> String.length l >= 4 && String.sub l 0 4 = "FAIL")
    r.Compare_core.lines

let test_every_drifted_field_reported () =
  (* three counters drift plus the race count: one FAIL line each, so a
     single gate run names the whole divergence *)
  let baseline =
    [ entry ~races:3 ~extras:[ ("messages", 100); ("diffs_created", 7); ("barriers", 4) ] "sor" ]
  in
  let current =
    [ entry ~races:4 ~extras:[ ("messages", 120); ("diffs_created", 9); ("barriers", 4) ] "sor" ]
  in
  let r = gate ~ignore_wall:true baseline current in
  check Alcotest.bool "drift fails" false (Compare_core.passed r);
  check Alcotest.int "one FAIL line per drifted field" 3 (List.length (fail_lines r));
  List.iter
    (fun needle ->
      check Alcotest.bool (needle ^ " named") true
        (List.exists (fun l -> contains l needle) (fail_lines r)))
    [ "race count 3 -> 4"; "messages 100 -> 120"; "diffs_created 7 -> 9" ]

let test_extras_compared_only_when_shared () =
  (* a counter the old baseline never recorded cannot drift; one both
     runs have still gates *)
  let baseline = [ entry ~extras:[ ("messages", 100) ] "sor" ] in
  let current = [ entry ~extras:[ ("messages", 100); ("lock_acquires", 55) ] "sor" ] in
  check Alcotest.bool "new counter in current only passes" true
    (Compare_core.passed (gate ~ignore_wall:true baseline current));
  let current' = [ entry ~extras:[ ("messages", 99); ("lock_acquires", 55) ] "sor" ] in
  let r = gate ~ignore_wall:true baseline current' in
  check Alcotest.bool "shared counter still gates" false (Compare_core.passed r);
  check Alcotest.int "only the shared drift reported" 1 (List.length (fail_lines r))

let test_backend_in_key () =
  (* an entry that moved to a different backend is a different point: no
     shared key, so the gate refuses to call the comparison clean *)
  let baseline = [ entry ~backend:"lrc" "sor" ] in
  let current = [ entry ~backend:"mesi" "sor" ] in
  let r = gate baseline current in
  check Alcotest.int "different backends never match" 0 r.Compare_core.compared;
  (* same backend on both sides still compares *)
  let r' = gate [ entry ~backend:"mesi" "sor" ] [ entry ~backend:"mesi" "sor" ] in
  check Alcotest.bool "same backend compares" true (Compare_core.passed r')

let test_backend_absent_defaults_lrc () =
  (* a pre-v8 baseline has no "backend" field; it must keep matching
     entries recorded as lrc *)
  let json =
    Bench_json.Obj
      [
        ("app", Bench_json.String "sor");
        ("scale", Bench_json.String "small");
        ("nprocs", Bench_json.Int 8);
        ("detect", Bench_json.Bool true);
        ("protocol", Bench_json.String "single-writer");
        ("wall_s", Bench_json.Float 1.0);
        ("sim_time_ns", Bench_json.Int 5000);
        ("races", Bench_json.Int 3);
        ("mem_checksum", Bench_json.Int 48879);
        ("bytes", Bench_json.Int 4096);
      ]
  in
  let e = Compare_core.entry_of_json json in
  let _, _, _, _, _, _, backend, sim_jobs = e.Compare_core.key in
  check Alcotest.string "absent backend field reads as lrc" "lrc" backend;
  check Alcotest.int "absent sim_jobs field reads as sequential" 0 sim_jobs

let test_sim_jobs_in_key () =
  (* a --sim-jobs run uses the window-sharded engine, whose simulated
     time legitimately differs from the legacy loop's: it must never
     gate against a sequential baseline, only against one recorded with
     the same --sim-jobs *)
  let baseline = [ entry ~sim_jobs:0 "sor" ] in
  let current = [ entry ~sim_jobs:2 ~sim:5_500 "sor" ] in
  let r = gate baseline current in
  check Alcotest.int "sharded vs sequential never match" 0 r.Compare_core.compared;
  let r' = gate [ entry ~sim_jobs:2 "sor" ] [ entry ~sim_jobs:2 "sor" ] in
  check Alcotest.bool "same sim_jobs compares" true (Compare_core.passed r');
  (* a null sim_jobs in the JSON folds to 0, same as absent *)
  let null_jobs =
    Compare_core.entry_of_json
      (Bench_json.Obj
         [
           ("app", Bench_json.String "sor");
           ("scale", Bench_json.String "small");
           ("nprocs", Bench_json.Int 8);
           ("detect", Bench_json.Bool true);
           ("elide", Bench_json.Bool false);
           ("protocol", Bench_json.String "single-writer");
           ("backend", Bench_json.String "lrc");
           ("sim_jobs", Bench_json.Null);
           ("wall_s", Bench_json.Float 1.0);
           ("sim_time_ns", Bench_json.Int 5000);
           ("races", Bench_json.Int 3);
           ("mem_checksum", Bench_json.Int 48879);
           ("bytes", Bench_json.Int 4096);
         ])
  in
  check Alcotest.bool "null sim_jobs matches a sequential entry" true
    (Compare_core.passed (gate ~ignore_wall:true [ entry "sor" ] [ null_jobs ]))

let test_ignore_sim_jobs () =
  (* the CI smoke asserts the --sim-jobs contract itself: a sharded run
     at 2 domains gated against the same run at 1 domain. The key
     component must be erasable for that comparison to exist at all,
     and deterministic drift must still fail through it. *)
  let baseline = [ entry ~sim_jobs:1 "water" ] in
  let current = [ entry ~sim_jobs:2 ~wall:3.0 "water" ] in
  let r = gate ~ignore_wall:true ~ignore_sim_jobs:true baseline current in
  check Alcotest.bool "--ignore-sim-jobs compares across domain counts" true
    (Compare_core.passed r);
  check Alcotest.int "the pair compared" 1 r.Compare_core.compared;
  let drifted = [ entry ~sim_jobs:2 ~checksum:0xdead "water" ] in
  check Alcotest.bool "checksum drift still fails across the erased key" false
    (Compare_core.passed (gate ~ignore_wall:true ~ignore_sim_jobs:true baseline drifted))

(* The PR 8 back-compat contract, end to end: a pre-v8 baseline entry
   (no "backend" field, no bus counters) must gate cleanly against a
   current lrc entry that records bus counters — the absent backend
   folds to "lrc" so the keys match, and counters only one side has are
   never compared. *)
let test_pre_v8_baseline_gates_current_lrc () =
  let pre_v8 =
    Compare_core.entry_of_json
      (Bench_json.Obj
         [
           ("app", Bench_json.String "sor");
           ("scale", Bench_json.String "small");
           ("nprocs", Bench_json.Int 8);
           ("detect", Bench_json.Bool true);
           ("protocol", Bench_json.String "single-writer");
           ("wall_s", Bench_json.Float 1.0);
           ("sim_time_ns", Bench_json.Int 5000);
           ("races", Bench_json.Int 3);
           ("mem_checksum", Bench_json.Int 48879);
           ("bytes", Bench_json.Int 4096);
           ("messages", Bench_json.Int 100);
         ])
  in
  let current =
    [
      entry ~backend:"lrc"
        ~extras:[ ("messages", 100); ("bus_transactions", 0); ("invalidations", 0) ]
        "sor";
    ]
  in
  let r = gate ~ignore_wall:true [ pre_v8 ] current in
  check Alcotest.bool "pre-v8 baseline gates a current lrc entry" true
    (Compare_core.passed r);
  check Alcotest.int "the shared key compared" 1 r.Compare_core.compared

let test_bus_counters_compared_only_when_shared () =
  (* baseline recorded before the bus backends existed: a current run's
     bus counters must not be compared against its absence... *)
  let baseline = [ entry ~backend:"mesi" ~extras:[ ("messages", 0) ] "sor" ] in
  let current =
    [ entry ~backend:"mesi" ~extras:[ ("messages", 0); ("bus_transactions", 512) ] "sor" ]
  in
  check Alcotest.bool "bus counter only in current never drifts" true
    (Compare_core.passed (gate ~ignore_wall:true baseline current));
  (* ...but once both files carry the counter, it gates and is named *)
  let baseline' =
    [ entry ~backend:"mesi" ~extras:[ ("messages", 0); ("bus_transactions", 512) ] "sor" ]
  in
  let current' =
    [ entry ~backend:"mesi" ~extras:[ ("messages", 0); ("bus_transactions", 640) ] "sor" ]
  in
  let r = gate ~ignore_wall:true baseline' current' in
  check Alcotest.bool "shared bus counter drift fails" false (Compare_core.passed r);
  check Alcotest.bool "the drifted counter is named" true
    (List.exists (fun l -> contains l "bus_transactions 512 -> 640") (fail_lines r))

let test_extras_parsed_from_json () =
  let json =
    Bench_json.Obj
      [
        ("app", Bench_json.String "sor");
        ("scale", Bench_json.String "small");
        ("nprocs", Bench_json.Int 8);
        ("detect", Bench_json.Bool true);
        ("protocol", Bench_json.String "single-writer");
        ("wall_s", Bench_json.Float 1.0);
        ("sim_time_ns", Bench_json.Int 5000);
        ("races", Bench_json.Int 3);
        ("mem_checksum", Bench_json.Int 48879);
        ("bytes", Bench_json.Int 4096);
        ("messages", Bench_json.Int 100);
        ("barriers", Bench_json.Int 4);
        ("wall_phase", Bench_json.Int 9);
        (* not a known counter: ignored *)
      ]
  in
  let e = Compare_core.entry_of_json json in
  check
    Alcotest.(list (pair string int))
    "known counters harvested in order"
    [ ("messages", 100); ("barriers", 4) ]
    e.Compare_core.extras

let test_load_failures_are_failure () =
  (* every load failure surfaces as [Failure] with the path prefixed, so
     compare.exe's one handler turns it into a clean usage-error exit *)
  let expect_failure path =
    match Compare_core.load path with
    | _ -> Alcotest.fail "load of a bad input succeeded"
    | exception Failure msg ->
        check Alcotest.bool
          (Printf.sprintf "message names the input: %s" msg)
          true
          (String.length msg > 0 && String.sub msg 0 4 = "/tmp")
  in
  expect_failure "/tmp/cvm_compare_missing.json";
  let malformed = "/tmp/cvm_compare_malformed.json" in
  let oc = open_out malformed in
  output_string oc "{\"schema\": \"not-terminated";
  close_out oc;
  expect_failure malformed;
  Sys.remove malformed

let suite =
  [
    ( "bench-compare",
      [
        Alcotest.test_case "identical runs pass" `Quick test_identical_passes;
        Alcotest.test_case "missing baseline entry fails" `Quick
          test_missing_baseline_entry_fails;
        Alcotest.test_case "extra current entry passes" `Quick test_extra_current_entry_passes;
        Alcotest.test_case "wall regression fails" `Quick test_wall_regression_fails;
        Alcotest.test_case "noise floor" `Quick test_wall_noise_floor;
        Alcotest.test_case "--ignore-wall" `Quick test_ignore_wall;
        Alcotest.test_case "deterministic drift beats --ignore-wall" `Quick
          test_deterministic_drift_fails_despite_ignore_wall;
        Alcotest.test_case "checksum drift fails" `Quick test_checksum_drift_fails;
        Alcotest.test_case "nothing comparable fails" `Quick test_nothing_comparable_fails;
        Alcotest.test_case "every drifted field reported" `Quick
          test_every_drifted_field_reported;
        Alcotest.test_case "extras compared only when shared" `Quick
          test_extras_compared_only_when_shared;
        Alcotest.test_case "backend part of the key" `Quick test_backend_in_key;
        Alcotest.test_case "sim_jobs part of the key" `Quick test_sim_jobs_in_key;
        Alcotest.test_case "--ignore-sim-jobs erases the key component" `Quick
          test_ignore_sim_jobs;
        Alcotest.test_case "absent backend defaults to lrc" `Quick
          test_backend_absent_defaults_lrc;
        Alcotest.test_case "pre-v8 baseline gates current lrc entry" `Quick
          test_pre_v8_baseline_gates_current_lrc;
        Alcotest.test_case "bus counters compared only when shared" `Quick
          test_bus_counters_compared_only_when_shared;
        Alcotest.test_case "extras parsed from JSON" `Quick test_extras_parsed_from_json;
        Alcotest.test_case "load failures normalize to Failure" `Quick
          test_load_failures_are_failure;
      ] );
  ]
