(* The benchmark regression gate's decision logic (Compare_core), on
   synthetic runs. The CLI is a thin wrapper, so these cover everything
   that decides the exit code. *)

let check = Alcotest.check

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let entry ?(wall = 1.0) ?(races = 3) ?(checksum = 0xbeef) ?(sim = 5_000) ?(bytes = 4096)
    ?(nprocs = 8) name =
  {
    Compare_core.key = (name, "small", nprocs, true, false, "single-writer");
    wall_s = wall;
    sim_time_ns = sim;
    races;
    mem_checksum = checksum;
    bytes;
  }

let gate ?threshold_pct ?ignore_wall baseline current =
  Compare_core.compare_runs ?threshold_pct ?ignore_wall ~baseline ~current ()

let test_identical_passes () =
  let run = [ entry "sor"; entry "fft" ] in
  let r = gate run run in
  check Alcotest.bool "identical runs pass" true (Compare_core.passed r);
  check Alcotest.int "both entries compared" 2 r.Compare_core.compared

let test_missing_baseline_entry_fails () =
  (* a sweep point that silently disappears from the current run must
     fail the gate, not print a note *)
  let baseline = [ entry "sor"; entry "fft" ] and current = [ entry "sor" ] in
  let r = gate baseline current in
  check Alcotest.bool "missing entry fails" false (Compare_core.passed r);
  check Alcotest.int "exactly one failure" 1 r.Compare_core.failures;
  check Alcotest.bool "the failure names the missing point" true
    (List.exists
       (fun l ->
         String.length l >= 4 && String.sub l 0 4 = "FAIL"
         && contains l "missing from current run")
       r.Compare_core.lines)

let test_extra_current_entry_passes () =
  (* the other direction — the suite grew — is fine *)
  let baseline = [ entry "sor" ] and current = [ entry "sor"; entry "fft" ] in
  let r = gate baseline current in
  check Alcotest.bool "extra current entry passes" true (Compare_core.passed r)

let test_wall_regression_fails () =
  let baseline = [ entry ~wall:1.0 "sor" ] and current = [ entry ~wall:1.5 "sor" ] in
  let r = gate ~threshold_pct:15.0 baseline current in
  check Alcotest.bool "50% slower fails a 15% threshold" false (Compare_core.passed r)

let test_wall_noise_floor () =
  (* huge ratio, tiny absolute drift: under the 50 ms floor, never fails *)
  let baseline = [ entry ~wall:0.010 "sor" ] and current = [ entry ~wall:0.040 "sor" ] in
  let r = gate ~threshold_pct:15.0 baseline current in
  check Alcotest.bool "sub-noise-floor drift passes" true (Compare_core.passed r)

let test_ignore_wall () =
  let baseline = [ entry ~wall:1.0 "sor" ] and current = [ entry ~wall:10.0 "sor" ] in
  let r = gate ~ignore_wall:true baseline current in
  check Alcotest.bool "--ignore-wall skips the wall check" true (Compare_core.passed r)

let test_deterministic_drift_fails_despite_ignore_wall () =
  let baseline = [ entry ~races:3 "sor" ] and current = [ entry ~races:4 "sor" ] in
  let r = gate ~ignore_wall:true baseline current in
  check Alcotest.bool "race-count drift fails even with --ignore-wall" false
    (Compare_core.passed r)

let test_checksum_drift_fails () =
  let baseline = [ entry ~checksum:1 "sor" ] and current = [ entry ~checksum:2 "sor" ] in
  check Alcotest.bool "checksum drift fails" false (Compare_core.passed (gate baseline current))

let test_nothing_comparable_fails () =
  let r = gate [ entry "sor" ~nprocs:4 ] [ entry "sor" ~nprocs:8 ] in
  check Alcotest.int "no shared keys" 0 r.Compare_core.compared;
  check Alcotest.bool "an empty comparison never passes" false (Compare_core.passed r)

let suite =
  [
    ( "bench-compare",
      [
        Alcotest.test_case "identical runs pass" `Quick test_identical_passes;
        Alcotest.test_case "missing baseline entry fails" `Quick
          test_missing_baseline_entry_fails;
        Alcotest.test_case "extra current entry passes" `Quick test_extra_current_entry_passes;
        Alcotest.test_case "wall regression fails" `Quick test_wall_regression_fails;
        Alcotest.test_case "noise floor" `Quick test_wall_noise_floor;
        Alcotest.test_case "--ignore-wall" `Quick test_ignore_wall;
        Alcotest.test_case "deterministic drift beats --ignore-wall" `Quick
          test_deterministic_drift_fails_despite_ignore_wall;
        Alcotest.test_case "checksum drift fails" `Quick test_checksum_drift_fails;
        Alcotest.test_case "nothing comparable fails" `Quick test_nothing_comparable_fails;
      ] );
  ]
