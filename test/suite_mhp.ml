(* The static MHP race analysis: pinned per-app and per-kernel reports,
   the dynamic soundness gate (every race the detector or the oracle
   observes must map to a statically flagged pair), the
   instrumentation-elision equivalence harness, and a qcheck
   differential fuzzer against a brute-force interleaving enumerator. *)

let check = Alcotest.check

let app name = Apps.Registry.make ~scale:Apps.Registry.Small name
let report_of name = Instrument.Mhp.analyze ((app name).Apps.App.binary ())

let app_names = [ "fft"; "sor"; "tsp"; "water"; "lu" ]

(* ------------------------------------------------------------------ *)
(* Pinned static reports per application                               *)

let test_app_report_pins () =
  (* (name, pairs, mismatch pairs, race-free sites, shared sites) *)
  List.iter
    (fun (name, pairs, mismatches, free, shared) ->
      let r = report_of name in
      check Alcotest.int (name ^ ": pair count") pairs (List.length r.Instrument.Mhp.pairs);
      check Alcotest.int (name ^ ": mismatch pairs") mismatches
        (List.length
           (List.filter
              (fun p -> p.Instrument.Mhp.p_severity = Instrument.Mhp.Mismatch)
              r.Instrument.Mhp.pairs));
      check Alcotest.int (name ^ ": race-free sites") free
        (List.length r.Instrument.Mhp.race_free_sites);
      check Alcotest.int (name ^ ": shared sites") shared
        (List.length r.Instrument.Mhp.shared_sites))
    [
      ("fft", 9, 0, 6, 12);
      ("sor", 3, 0, 5, 7);
      ("tsp", 4, 1, 9, 14);
      ("water", 15, 3, 3, 9);
      ("lu", 6, 0, 0, 6);
    ]

let test_known_racy_pairs_flagged () =
  let tsp = report_of "tsp" in
  check Alcotest.bool "tsp: bound_prune x bound_update flagged" true
    (Instrument.Mhp.covers tsp ~site_a:"tsp:bound_prune" ~site_b:"tsp:bound_update");
  let water = report_of "water" in
  check Alcotest.bool "water: pot_racy x pot_locked flagged" true
    (Instrument.Mhp.covers water ~site_a:"water:pot_racy" ~site_b:"water:pot_locked")

let test_partition_is_exact () =
  (* may-race and race-free partition the shared sites *)
  List.iter
    (fun name ->
      let r = report_of name in
      let union =
        List.sort_uniq compare
          (r.Instrument.Mhp.may_race_sites @ r.Instrument.Mhp.race_free_sites)
      in
      check (Alcotest.list Alcotest.string) (name ^ ": partition")
        (List.sort_uniq compare r.Instrument.Mhp.shared_sites)
        union;
      List.iter
        (fun s ->
          check Alcotest.bool (name ^ ": " ^ s ^ " joins no pair") false
            (Instrument.Mhp.covers_site r ~site:s))
        r.Instrument.Mhp.race_free_sites)
    app_names

let test_warnings_coincide_with_lint () =
  (* on the shipped binaries the MHP lint view reproduces the
     static_analysis warnings exactly *)
  List.iter
    (fun name ->
      let binary = (app name).Apps.App.binary () in
      let lint = (Instrument.Static_analysis.analyze binary).Instrument.Static_analysis.warnings in
      let mhp = Instrument.Mhp.warnings (Instrument.Mhp.analyze binary) in
      check Alcotest.int (name ^ ": same warning count") (List.length lint) (List.length mhp);
      List.iter2
        (fun (a : Instrument.Static_analysis.warning) b ->
          check Alcotest.string (name ^ ": same site") a.w_site b.Instrument.Static_analysis.w_site;
          check Alcotest.string (name ^ ": same other site") a.w_other_site b.w_other_site;
          check Alcotest.string (name ^ ": same region") a.w_region b.w_region)
        lint mhp)
    app_names

let test_report_deterministic () =
  List.iter
    (fun name ->
      let a = report_of name and b = report_of name in
      check Alcotest.bool (name ^ ": analyze is deterministic") true (a = b))
    app_names

(* ------------------------------------------------------------------ *)
(* Pinned static reports per protocol-stress kernel                    *)

let kernel_report (k : Litmus.kernel) = Instrument.Mhp.analyze (k.Litmus.k_binary ())

let test_kernel_report_pins () =
  (* fully race-free kernels: lock chains and stacked invalidations *)
  List.iter
    (fun (k : Litmus.kernel) ->
      let r = kernel_report k in
      check Alcotest.int (k.k_name ^ ": no static pairs") 0 (List.length r.Instrument.Mhp.pairs))
    [ Litmus.lock_handoff_chain; Litmus.lock_chained_publish ];
  (* write-notice-invalid: the single-writer stores are flagged as
     self-pairs (the pid-0-only discipline is beyond the SPMD model);
     the barrier-separated warm and verify phases are proven clean *)
  let wni = kernel_report Litmus.write_notice_invalid_page in
  check (Alcotest.list Alcotest.string) "wni: warm and verify elidable"
    [ "wni:verify"; "wni:warm" ]
    wni.Instrument.Mhp.race_free_sites;
  (* diff-cache-reuse: only the post-race verify phase is provably clean *)
  let dcr = kernel_report Litmus.diff_cache_reuse in
  check (Alcotest.list Alcotest.string) "dcr: verify elidable" [ "dcr:verify" ]
    dcr.Instrument.Mhp.race_free_sites;
  (* false sharing: the self-store is flagged (owner partitioning is
     beyond the static model), the read of the neighbour's word is not *)
  let fsw = kernel_report Litmus.false_sharing_writers in
  check Alcotest.bool "fsw: mine flagged" true
    (Instrument.Mhp.covers_site fsw ~site:"fsw:mine");
  check Alcotest.bool "fsw: neighbour elidable" false
    (Instrument.Mhp.covers_site fsw ~site:"fsw:neighbour");
  (* the racy kernels keep their racing sites *)
  let tso = kernel_report Litmus.true_sharing_overlap in
  check Alcotest.bool "tso: store self-pair" true
    (Instrument.Mhp.covers tso ~site_a:"tso:store" ~site_b:"tso:store");
  let mrr = kernel_report Litmus.multi_reader_race in
  check Alcotest.bool "mrr: store x load" true
    (Instrument.Mhp.covers mrr ~site_a:"mrr:store" ~site_b:"mrr:load");
  let pl = kernel_report Litmus.partially_locked in
  check Alcotest.bool "pl: unlocked store x locked write is a mismatch" true
    (List.exists
       (fun p ->
         p.Instrument.Mhp.p_severity = Instrument.Mhp.Mismatch
         && p.Instrument.Mhp.p_a.Instrument.Mhp.s_site <> p.Instrument.Mhp.p_b.Instrument.Mhp.s_site)
       pl.Instrument.Mhp.pairs)

(* ------------------------------------------------------------------ *)
(* Soundness gate: dynamic races must be statically flagged            *)

(* Sites observed touching [addr], from a watch run's hits. *)
let sites_at hits addr =
  List.filter_map
    (fun (h : Instrument.Watch.hit) -> if h.addr = addr then Some h.site else None)
    hits
  |> List.sort_uniq compare

(* Some statically flagged pair must have both sides among the sites
   that dynamically touched the racy word. *)
let statically_explained report hits addr =
  let sites = sites_at hits addr in
  List.exists
    (fun a ->
      List.exists (fun b -> Instrument.Mhp.covers report ~site_a:a ~site_b:b) sites)
    sites

let test_app_soundness name () =
  let a = app name in
  let report = Instrument.Mhp.analyze (a.Apps.App.binary ()) in
  let cfg = { Testutil.detect_cfg with Lrc.Config.record_sync = true } in
  let run1 = Core.Driver.run ~cfg ~app:a ~nprocs:4 () in
  let detected = Core.Driver.racy_addrs run1 in
  let oracle = Racedetect.Oracle.racy_addrs ~nprocs:4 run1.Core.Driver.trace in
  let racy = List.sort_uniq compare (detected @ oracle) in
  if racy <> [] then begin
    (* replay the recorded lock-grant order with the racy words watched,
       mapping each back to source sites (the section 6.1 second run) *)
    let cfg2 = { Testutil.detect_cfg with Lrc.Config.replay = run1.Core.Driver.sync_trace } in
    let run2 = Core.Driver.run ~cfg:cfg2 ~app:a ~nprocs:4 ~watch_addrs:racy () in
    check Testutil.addr_list (name ^ ": watch replay reproduces the race set") detected
      (Core.Driver.racy_addrs run2);
    List.iter
      (fun addr ->
        check Alcotest.bool
          (Format.sprintf "%s: race at 0x%x maps to a static pair" name addr)
          true
          (statically_explained report run2.Core.Driver.watch_hits addr))
      racy
  end

let test_kernel_soundness (k : Litmus.kernel) () =
  let report = kernel_report k in
  let o1 = Litmus.run_kernel k in
  let racy = List.sort_uniq compare (o1.Litmus.detected @ o1.Litmus.oracle) in
  if racy <> [] then begin
    let o2 = Litmus.run_kernel ~watch_addrs:racy k in
    check Testutil.addr_list (k.k_name ^ ": watch run reproduces the race set")
      o1.Litmus.detected o2.Litmus.detected;
    List.iter
      (fun addr ->
        check Alcotest.bool
          (Format.sprintf "%s: race at 0x%x maps to a static pair" k.k_name addr)
          true
          (statically_explained report o2.Litmus.watch_hits addr))
      racy
  end

let test_precision_metric () =
  (* the report is only useful if it actually clears a substantial
     fraction of shared sites; pin a floor per app so a precision
     regression (e.g. a lattice join gone conservative) fails loudly *)
  List.iter
    (fun (name, min_free) ->
      let r = report_of name in
      check Alcotest.bool
        (Format.sprintf "%s: at least %d race-free shared sites" name min_free)
        true
        (List.length r.Instrument.Mhp.race_free_sites >= min_free))
    [ ("fft", 4); ("sor", 4); ("tsp", 7); ("water", 2) ]

(* ------------------------------------------------------------------ *)
(* Elision equivalence: skipping statically race-free checks changes
   cost, never results                                                 *)

let test_app_elision_equiv name expect_elision () =
  let a = app name in
  let plain = Core.Driver.run ~cfg:Testutil.detect_cfg ~app:a ~nprocs:4 () in
  let cfg = { Testutil.detect_cfg with Lrc.Config.elide_sites = Some [] } in
  let elided = Core.Driver.run ~cfg ~app:a ~nprocs:4 () in
  check Testutil.addr_list (name ^ ": race set unchanged by elision")
    (Core.Driver.racy_addrs plain) (Core.Driver.racy_addrs elided);
  check Testutil.addr_list (name ^ ": oracle unchanged by elision")
    (Racedetect.Oracle.racy_addrs ~nprocs:4 plain.Core.Driver.trace)
    (Racedetect.Oracle.racy_addrs ~nprocs:4 elided.Core.Driver.trace);
  check Alcotest.int (name ^ ": memory image unchanged by elision")
    plain.Core.Driver.mem_checksum elided.Core.Driver.mem_checksum;
  check Alcotest.int (name ^ ": no elision without the flag") 0
    plain.Core.Driver.stats.Sim.Stats.elided_checks;
  check Alcotest.bool (name ^ ": elision skipped checks") expect_elision
    (elided.Core.Driver.stats.Sim.Stats.elided_checks > 0)

let test_kernel_elision_equiv (k : Litmus.kernel) () =
  let plain = Litmus.run_kernel k in
  let elided = Litmus.run_kernel ~elide:true k in
  check Testutil.addr_list (k.k_name ^ ": race set unchanged by elision")
    plain.Litmus.detected elided.Litmus.detected;
  check Testutil.addr_list (k.k_name ^ ": oracle unchanged by elision")
    plain.Litmus.oracle elided.Litmus.oracle;
  check Alcotest.int (k.k_name ^ ": checksum unchanged by elision")
    plain.Litmus.checksum elided.Litmus.checksum

(* ------------------------------------------------------------------ *)
(* Differential fuzzer: random straight-line SPMD programs, the static
   pair set versus a brute-force enumeration of every interleaving      *)

type fop = FLoad of int | FStore of int | FAcquire of int | FRelease of int | FBarrier

let fuzz_base = 64 (* keep enumerated addresses away from 0 *)

let site_of_index i = Format.sprintf "f:%d" i

let binary_of_fops fops =
  let open Instrument.Ir in
  let ops =
    List.mapi
      (fun i f ->
        match f with
        | FLoad o -> load ~offset:(o * 8) ~site:(site_of_index i) (Reg 0)
        | FStore o -> store ~offset:(o * 8) ~site:(site_of_index i) (Reg 0)
        | FAcquire l -> acquire l
        | FRelease l -> release l
        | FBarrier -> barrier)
      fops
  in
  Instrument.Binary.make ~name:"fuzz"
    ~procs:
      [
        proc ~name:"fuzz" ~entry:"entry"
          [ block "entry" (malloc_shared ~dst:0 "fuzz.region" :: ops) ];
      ]
    []

(* Enumerate every interleaving of two processors running [fops] (locks
   exclusive, barriers joint) and collect the union of the oracle's racy
   words over all of them. *)
let enumerate_races fops =
  let arr = Array.of_list fops in
  let n = Array.length arr in
  let races = Hashtbl.create 16 in
  let at_barrier idx = idx < n && arr.(idx) = FBarrier in
  let rec go idx0 idx1 locks trace =
    if idx0 = n && idx1 = n then
      List.iter
        (fun rw -> Hashtbl.replace races rw ())
        (Racedetect.Oracle.races_of_trace ~nprocs:2 (List.rev trace))
    else if at_barrier idx0 && at_barrier idx1 then
      go (idx0 + 1) (idx1 + 1) locks
        ((1, Racedetect.Oracle.Barrier) :: (0, Racedetect.Oracle.Barrier) :: trace)
    else begin
      let step p idx k =
        if idx < n && not (at_barrier idx) then
          match arr.(idx) with
          | FAcquire l ->
              if not (List.mem_assoc l locks) then
                k ((l, p) :: locks) (p, Racedetect.Oracle.Acquire l)
          | FRelease l -> k (List.remove_assoc l locks) (p, Racedetect.Oracle.Release l)
          | FLoad o -> k locks (p, Racedetect.Oracle.Read (fuzz_base + (o * 8)))
          | FStore o -> k locks (p, Racedetect.Oracle.Write (fuzz_base + (o * 8)))
          | FBarrier -> ()
      in
      step 0 idx0 (fun locks' ev -> go (idx0 + 1) idx1 locks' (ev :: trace));
      step 1 idx1 (fun locks' ev -> go idx0 (idx1 + 1) locks' (ev :: trace))
    end
  in
  go 0 0 [] [];
  Hashtbl.fold (fun rw () acc -> rw :: acc) races []

(* Sites in [fops] accessing word [o] with [kind]. *)
let fuzz_sites_with fops o kind =
  List.concat
    (List.mapi
       (fun i f ->
         match (f, kind) with
         | FLoad o', Proto.Race.Read when o' = o -> [ site_of_index i ]
         | FStore o', Proto.Race.Write when o' = o -> [ site_of_index i ]
         | _ -> [])
       fops)

let fops_gen : fop list QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let access () =
    let o = int_range 0 3 st in
    if bool st then FStore o else FLoad o
  in
  let rec build budget acc =
    if budget <= 0 then List.rev acc
    else
      match int_range 0 5 st with
      | 0 | 1 | 2 -> build (budget - 1) (access () :: acc)
      | 3 -> build (budget - 1) (FBarrier :: acc)
      | _ when budget >= 3 ->
          let l = int_range 0 1 st in
          build (budget - 3) (FRelease l :: access () :: FAcquire l :: acc)
      | _ -> build (budget - 1) (access () :: acc)
  in
  match build 6 [] with
  | [] -> [ FStore 0 ]
  | prog -> prog

let pp_fop ppf = function
  | FLoad o -> Format.fprintf ppf "load w%d" o
  | FStore o -> Format.fprintf ppf "store w%d" o
  | FAcquire l -> Format.fprintf ppf "acquire %d" l
  | FRelease l -> Format.fprintf ppf "release %d" l
  | FBarrier -> Format.fprintf ppf "barrier"

let fops_print fops =
  Format.asprintf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_fop) fops

let fuzz_soundness =
  QCheck.Test.make ~count:40 ~name:"static pairs cover every enumerated race"
    (QCheck.make ~print:fops_print fops_gen) (fun fops ->
      let report = Instrument.Mhp.analyze (binary_of_fops fops) in
      let races = enumerate_races fops in
      List.for_all
        (fun (rw : Racedetect.Oracle.racy_word) ->
          let o = (rw.addr - fuzz_base) / 8 in
          let k1, k2 = rw.kinds in
          List.exists
            (fun a ->
              List.exists
                (fun b -> Instrument.Mhp.covers report ~site_a:a ~site_b:b)
                (fuzz_sites_with fops o k2))
            (fuzz_sites_with fops o k1))
        races)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "mhp:static",
      [
        Alcotest.test_case "app report pins" `Quick test_app_report_pins;
        Alcotest.test_case "known racy pairs flagged" `Quick test_known_racy_pairs_flagged;
        Alcotest.test_case "may-race/race-free partition" `Quick test_partition_is_exact;
        Alcotest.test_case "warnings coincide with lint" `Quick test_warnings_coincide_with_lint;
        Alcotest.test_case "deterministic" `Quick test_report_deterministic;
        Alcotest.test_case "kernel report pins" `Quick test_kernel_report_pins;
        Alcotest.test_case "precision floors" `Quick test_precision_metric;
      ] );
    ( "mhp:soundness",
      List.map
        (fun name ->
          Alcotest.test_case ("app " ^ name) `Quick (test_app_soundness name))
        app_names
      @ List.map
          (fun (k : Litmus.kernel) ->
            Alcotest.test_case ("kernel " ^ k.k_name) `Quick (test_kernel_soundness k))
          Litmus.kernels
      @ [ QCheck_alcotest.to_alcotest fuzz_soundness ] );
    ( "mhp:elision",
      (* elision bites only where the synthetic binary's site vocabulary
         covers the body's (sor/tsp/water); fft's body uses its own
         labels and lu has no statically race-free sites — for both the
         derived set is a sound no-op *)
      List.map
        (fun (name, expect) ->
          Alcotest.test_case ("app " ^ name) `Quick (test_app_elision_equiv name expect))
        [ ("fft", false); ("sor", true); ("tsp", true); ("water", true); ("lu", false) ]
      @ List.map
          (fun (k : Litmus.kernel) ->
            Alcotest.test_case ("kernel " ^ k.k_name) `Quick (test_kernel_elision_equiv k))
          Litmus.kernels );
  ]
