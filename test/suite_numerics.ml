(* Numeric validation of the application kernels against naive
   references: the FFT against a direct DFT, the TSP lower bound against
   brute force, SOR partitioning, and Water's force symmetry. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* FFT kernel                                                          *)

let naive_dft ~inverse re im =
  let n = Array.length re in
  let sign = if inverse then 1.0 else -1.0 in
  let out_re = Array.make n 0.0 and out_im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for j = 0 to n - 1 do
      let angle = sign *. 2.0 *. Float.pi *. float_of_int (j * k) /. float_of_int n in
      let c = cos angle and s = sin angle in
      out_re.(k) <- out_re.(k) +. (re.(j) *. c) -. (im.(j) *. s);
      out_im.(k) <- out_im.(k) +. (re.(j) *. s) +. (im.(j) *. c)
    done
  done;
  if inverse then
    for k = 0 to n - 1 do
      out_re.(k) <- out_re.(k) /. float_of_int n;
      out_im.(k) <- out_im.(k) /. float_of_int n
    done;
  (out_re, out_im)

let prop_fft_matches_dft =
  QCheck.Test.make ~name:"fft_in_place matches a direct DFT" ~count:50
    QCheck.(pair bool (list_of_size (Gen.return 16) (float_bound_exclusive 1.0)))
    (fun (inverse, values) ->
      let re = Array.of_list values in
      let im = Array.mapi (fun i v -> v *. float_of_int ((i mod 3) - 1)) re in
      let got_re = Array.copy re and got_im = Array.copy im in
      Apps.Fft.fft_in_place ~inverse got_re got_im;
      let want_re, want_im = naive_dft ~inverse re im in
      let close a b = Float.abs (a -. b) < 1e-9 in
      Array.for_all2 close got_re want_re && Array.for_all2 close got_im want_im)

let test_fft_roundtrip_kernel () =
  let n = 64 in
  let re = Array.init n (fun i -> Apps.Fft.input_re i) in
  let im = Array.init n (fun i -> Apps.Fft.input_im i) in
  let fre = Array.copy re and fim = Array.copy im in
  Apps.Fft.fft_in_place ~inverse:false fre fim;
  Apps.Fft.fft_in_place ~inverse:true fre fim;
  Array.iteri
    (fun i v -> if Float.abs (v -. re.(i)) > 1e-10 then Alcotest.fail "roundtrip re")
    fre;
  Array.iteri
    (fun i v -> if Float.abs (v -. im.(i)) > 1e-10 then Alcotest.fail "roundtrip im")
    fim

let test_fft_parseval () =
  (* energy conservation: sum |x|^2 = (1/N) sum |X|^2 *)
  let n = 32 in
  let re = Array.init n (fun i -> sin (float_of_int i)) in
  let im = Array.init n (fun i -> cos (2.3 *. float_of_int i)) in
  let energy r i =
    Array.fold_left ( +. ) 0.0 (Array.mapi (fun k x -> (x *. x) +. (i.(k) *. i.(k))) r)
  in
  let before = energy re im in
  Apps.Fft.fft_in_place ~inverse:false re im;
  let after = energy re im /. float_of_int n in
  if Float.abs (before -. after) > 1e-9 *. before then Alcotest.fail "parseval violated"

(* ------------------------------------------------------------------ *)
(* TSP lower bound                                                     *)

let brute_force_optimum dist =
  let n = Array.length dist in
  let visited = Array.make n false in
  visited.(0) <- true;
  let best = ref max_int in
  let rec go current depth cost =
    if depth = n then best := min !best (cost + dist.(current).(0))
    else
      for c = 0 to n - 1 do
        if not visited.(c) then begin
          visited.(c) <- true;
          go c (depth + 1) (cost + dist.(current).(c));
          visited.(c) <- false
        end
      done
  in
  go 0 1 0;
  !best

let prop_tsp_lower_bound_admissible =
  (* the bound never exceeds the best completion of the empty prefix, so
     branch-and-bound with it can never prune the optimum *)
  QCheck.Test.make ~name:"tsp lower bound is admissible at the root" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let params = { Apps.Tsp.ncities = 7; seed; dfs_threshold = 7 } in
      let dist = Apps.Tsp.distances params in
      let n = 7 in
      let visited = Array.make n false in
      visited.(0) <- true;
      let bound = Apps.Tsp.lower_bound (Apps.Tsp.bound_ctx dist) visited ~current:0 ~cost:0 in
      bound <= brute_force_optimum dist)

(* The shipped lower bound scans ranked-neighbour rows; it must compute
   exactly the textbook value (cost + cheapest edge out of [current] +
   per unvisited city its cheapest edge into (unvisited \ itself) or
   home), or the branch-and-bound tree — and with it every simulated
   access — would silently change. *)
let naive_lower_bound dist visited ~n ~current ~cost =
  let lb = ref cost in
  let cheapest_from_current = ref max_int in
  let any = ref false in
  for u = 0 to n - 1 do
    if not visited.(u) then begin
      any := true;
      if dist.(current).(u) < !cheapest_from_current then
        cheapest_from_current := dist.(current).(u);
      let m = ref dist.(u).(0) in
      for v = 0 to n - 1 do
        if v <> u && (not visited.(v)) && dist.(u).(v) < !m then m := dist.(u).(v)
      done;
      lb := !lb + !m
    end
  done;
  if !any then !lb + !cheapest_from_current else !lb + dist.(current).(0)

let prop_tsp_lower_bound_matches_naive =
  QCheck.Test.make ~name:"tsp ranked lower bound equals naive scan" ~count:200
    QCheck.(pair (int_range 1 10_000) (int_range 0 255))
    (fun (seed, mask) ->
      let n = 8 in
      let params = { Apps.Tsp.ncities = n; seed; dfs_threshold = n } in
      let dist = Apps.Tsp.distances params in
      let ctx = Apps.Tsp.bound_ctx dist in
      let visited = Array.init n (fun i -> i = 0 || mask land (1 lsl i) <> 0) in
      (* current must be a visited city, as in any partial tour *)
      let current = ref 0 in
      Array.iteri (fun i v -> if v then current := i) visited;
      let current = !current in
      Apps.Tsp.lower_bound ctx visited ~current ~cost:17
      = naive_lower_bound dist visited ~n ~current ~cost:17)

let prop_tsp_reference_optimal =
  QCheck.Test.make ~name:"tsp reference equals brute force" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let params = { Apps.Tsp.ncities = 7; seed; dfs_threshold = 7 } in
      Apps.Tsp.reference params = brute_force_optimum (Apps.Tsp.distances params))

let test_tsp_distances_symmetric () =
  let dist = Apps.Tsp.distances Apps.Tsp.paper_params in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j d ->
          if d <> dist.(j).(i) then Alcotest.fail "asymmetric";
          if i = j && d <> 0 then Alcotest.fail "nonzero diagonal")
        row)
    dist

(* ------------------------------------------------------------------ *)
(* SOR partitioning                                                    *)

let prop_sor_bands_partition =
  QCheck.Test.make ~name:"sor bands cover all rows exactly once" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 12))
    (fun (rows, nprocs) ->
      let covered = Array.make rows 0 in
      for pid = 0 to nprocs - 1 do
        let lo, hi = Apps.Sor.band ~rows ~nprocs ~pid in
        for row = lo to hi - 1 do
          covered.(row) <- covered.(row) + 1
        done
      done;
      Array.for_all (fun c -> c = 1) covered)

let test_sor_reference_bounds () =
  (* after any number of sweeps, interior values stay within the boundary
     range (discrete maximum principle for the Jacobi average) *)
  let grid = Apps.Sor.reference { Apps.Sor.rows = 16; cols = 12; iters = 20 } in
  Array.iter
    (Array.iter (fun v -> if v < 0.0 || v > 2.0 then Alcotest.fail "out of range"))
    grid

(* ------------------------------------------------------------------ *)
(* Water                                                               *)

let test_water_force_antisymmetry () =
  let a = (0.3, 0.7, -0.2) and b = (1.1, -0.4, 0.5) in
  let (fx, fy, fz), pot = Apps.Water.site_interaction a b in
  let (gx, gy, gz), pot' = Apps.Water.site_interaction b a in
  check (Alcotest.float 1e-12) "fx" fx (-.gx);
  check (Alcotest.float 1e-12) "fy" fy (-.gy);
  check (Alcotest.float 1e-12) "fz" fz (-.gz);
  check (Alcotest.float 1e-12) "potential symmetric" pot pot'

let test_water_reference_deterministic () =
  let a = Apps.Water.reference Apps.Water.small_params in
  let b = Apps.Water.reference Apps.Water.small_params in
  check Alcotest.bool "bit-identical" true (a = b)

let test_water_initial_sites_distinct () =
  let n = 27 in
  let all =
    List.concat_map
      (fun m -> List.init Apps.Water.sites (fun s -> Apps.Water.initial_site n m s))
      (List.init n Fun.id)
  in
  check Alcotest.int "no coincident sites" (List.length all)
    (List.length (List.sort_uniq compare all))

let suite =
  [
    ( "numerics:fft",
      [
        QCheck_alcotest.to_alcotest prop_fft_matches_dft;
        Alcotest.test_case "roundtrip kernel" `Quick test_fft_roundtrip_kernel;
        Alcotest.test_case "parseval" `Quick test_fft_parseval;
      ] );
    ( "numerics:tsp",
      [
        QCheck_alcotest.to_alcotest prop_tsp_lower_bound_admissible;
        QCheck_alcotest.to_alcotest prop_tsp_lower_bound_matches_naive;
        QCheck_alcotest.to_alcotest prop_tsp_reference_optimal;
        Alcotest.test_case "distances symmetric" `Quick test_tsp_distances_symmetric;
      ] );
    ( "numerics:sor",
      [
        QCheck_alcotest.to_alcotest prop_sor_bands_partition;
        Alcotest.test_case "maximum principle" `Quick test_sor_reference_bounds;
      ] );
    ( "numerics:water",
      [
        Alcotest.test_case "force antisymmetry" `Quick test_water_force_antisymmetry;
        Alcotest.test_case "reference deterministic" `Quick test_water_reference_deterministic;
        Alcotest.test_case "distinct sites" `Quick test_water_initial_sites_distinct;
      ] );
  ]
