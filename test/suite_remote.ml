(* The remote process executor (Parallel.Remote) under seeded chaos.

   Every test runs real worker processes: test_main.exe re-executes
   itself (maybe_worker in test_main.ml hijacks the child), so these
   exercise the actual spawn/frame/heartbeat machinery, not a mock.
   Each failure mode in docs/PARALLEL.md's table gets a test that both
   trips the detector (visible in Executor_stats) and proves the run's
   results are STILL identical to a sequential run — the executor's
   whole contract is that failure handling never shows up in output. *)

let check = Alcotest.check

let probe ?(spin_ms = 0) ?(sleep_ms = 0) reply =
  Parallel.Task.Probe { reply; spin_ms; sleep_ms }

let decode bytes =
  match Core.Tasks.value_of_bytes bytes with
  | Core.Tasks.V_string s -> s
  | _ -> Alcotest.fail "probe decoded to a non-string value"

let plan spec =
  match Parallel.Chaos.parse spec with
  | Ok p -> p
  | Error msg -> Alcotest.fail msg

(* tight timing knobs so failure paths resolve in test time, not the
   production 600 s deadline *)
let config ?(workers = 2) ?(task_deadline_s = 5.0) ?(heartbeat_grace_s = 2.0)
    ?(chaos = Parallel.Chaos.none) () =
  {
    (Parallel.Remote.default_config ~workers) with
    Parallel.Remote.task_deadline_s;
    heartbeat_period_s = 0.05;
    heartbeat_grace_s;
    retry_backoff_s = 0.01;
    respawn_backoff_s = 0.02;
    respawn_backoff_max_s = 0.2;
    chaos;
  }

let run_probes cfg tasks =
  Parallel.Remote.with_executor ~config:cfg ~run:(Core.Tasks.runner ()) (fun ex ->
      let rows = List.map decode (Parallel.Pool.run_tasks_exn ex tasks) in
      (rows, ex.Parallel.Pool.ex_stats ()))

let st_field st name =
  match List.assoc_opt name (Parallel.Executor_stats.fields st) with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "stat %s missing" name)

let expect_replies tasks =
  List.map (function Parallel.Task.Probe { reply; _ } -> reply | _ -> assert false) tasks

let test_submission_order () =
  (* staggered sleeps force completions out of order; harvest must not be *)
  let tasks =
    List.init 8 (fun i -> probe ~sleep_ms:((8 - i) * 15) (Printf.sprintf "r%d" i))
  in
  let rows, st = run_probes (config ()) tasks in
  check (Alcotest.list Alcotest.string) "submission order" (expect_replies tasks) rows;
  check Alcotest.int "no retries on a healthy run" 0 (st_field st "tasks_retried")

let test_kill_after () =
  (* both gen-0 workers die INSTEAD of answering their 2nd task; the
     lost tasks retry on respawned workers and the output is unchanged *)
  let tasks = List.init 6 (fun i -> probe (Printf.sprintf "k%d" i)) in
  let rows, st = run_probes (config ~chaos:(plan "seed=3,kill-after=2") ()) tasks in
  check (Alcotest.list Alcotest.string) "results despite kills" (expect_replies tasks) rows;
  check Alcotest.bool "workers were lost" true (st_field st "workers_lost" >= 1);
  check Alcotest.bool "lost tasks were retried" true (st_field st "tasks_retried" >= 1);
  check Alcotest.bool "replacements spawned" true (st_field st "workers_respawned" >= 1)

let test_hang_deadline () =
  (* slot 0's first task hangs but keeps heartbeating: only the task
     deadline can catch it *)
  let tasks = List.init 4 (fun i -> probe (Printf.sprintf "h%d" i)) in
  let rows, st =
    run_probes (config ~task_deadline_s:0.4 ~chaos:(plan "seed=1,hang=0:0:1") ()) tasks
  in
  check (Alcotest.list Alcotest.string) "results despite hang" (expect_replies tasks) rows;
  check Alcotest.bool "deadline expired" true (st_field st "deadline_expiries" >= 1);
  check Alcotest.bool "hung task retried" true (st_field st "tasks_retried" >= 1)

let test_mute_heartbeat () =
  (* slot 0's first task hangs AND goes silent: the heartbeat grace
     catches it long before the (generous) task deadline *)
  let tasks = List.init 4 (fun i -> probe (Printf.sprintf "m%d" i)) in
  let rows, st =
    run_probes
      (config ~task_deadline_s:30.0 ~heartbeat_grace_s:0.4 ~chaos:(plan "seed=1,mute=0:0:1") ())
      tasks
  in
  check (Alcotest.list Alcotest.string) "results despite mute worker" (expect_replies tasks)
    rows;
  check Alcotest.bool "heartbeat grace expired" true (st_field st "heartbeat_expiries" >= 1)

let test_corrupt_frame () =
  let tasks = List.init 4 (fun i -> probe (Printf.sprintf "c%d" i)) in
  let rows, st = run_probes (config ~chaos:(plan "seed=1,corrupt=0:0:1") ()) tasks in
  check (Alcotest.list Alcotest.string) "results despite corrupt frame" (expect_replies tasks)
    rows;
  check Alcotest.bool "checksum caught the flip" true (st_field st "corrupt_frames" >= 1)

let test_truncated_frame () =
  let tasks = List.init 4 (fun i -> probe (Printf.sprintf "t%d" i)) in
  let rows, st = run_probes (config ~chaos:(plan "seed=1,truncate=0:0:1") ()) tasks in
  check (Alcotest.list Alcotest.string) "results despite truncated frame"
    (expect_replies tasks) rows;
  check Alcotest.bool "the worker was lost and replaced" true (st_field st "workers_lost" >= 1)

let test_crash_loop_breaker () =
  (* slot 0 exits at spawn, every generation: after max_respawns the
     breaker marks it Broken and slot 1 carries the whole run. The
     sleeps keep slot 1 busy long enough for slot 0 to burn through its
     whole respawn budget before the run completes. *)
  let tasks = List.init 10 (fun i -> probe ~sleep_ms:120 (Printf.sprintf "b%d" i)) in
  let rows, st = run_probes (config ~chaos:(plan "seed=1,crash-loop=0") ()) tasks in
  check (Alcotest.list Alcotest.string) "slot 1 absorbs the work" (expect_replies tasks) rows;
  check Alcotest.bool "breaker tripped" true (st_field st "respawns_suppressed" >= 1)

let test_all_broken_drains_inline () =
  (* ONE worker, crash-looping: every slot Broken means the supervisor
     runs the remainder inline — no stranded awaiter, same results *)
  let tasks = List.init 3 (fun i -> probe (Printf.sprintf "i%d" i)) in
  let rows, st =
    run_probes (config ~workers:1 ~chaos:(plan "seed=1,crash-loop=0") ()) tasks
  in
  check (Alcotest.list Alcotest.string) "inline drain result" (expect_replies tasks) rows;
  check Alcotest.int "every task ran inline" (List.length tasks) (st_field st "tasks_inline")

let test_poison_falls_back_inline () =
  (* one specific task kills ANY worker that touches it, every
     generation; after the retry cap it runs inline while the rest of
     the run proceeds normally on workers *)
  let tasks = [ probe "ok1"; probe "victim"; probe "ok2"; probe "ok3" ] in
  let rows, st = run_probes (config ~chaos:(plan "seed=1,poison=probe:victim") ()) tasks in
  check (Alcotest.list Alcotest.string) "poisoned task still answers" (expect_replies tasks)
    rows;
  check Alcotest.bool "it exhausted its retries" true
    (st_field st "tasks_retried" >= (config ()).Parallel.Remote.max_task_retries);
  check Alcotest.bool "then ran inline" true (st_field st "tasks_inline" >= 1)

(* The headline property, on a REAL experiment: under a random seeded
   chaos plan, at any worker count, the remote executor's rows are
   structurally equal to the sequential library call's. *)

let chaos_arb =
  let gen =
    QCheck.Gen.(
      map3
        (fun seed kill p_kill ->
          { Parallel.Chaos.none with Parallel.Chaos.seed; kill_after = kill; p_kill })
        (1 -- 10_000)
        (opt (1 -- 3))
        (oneofl [ 0.0; 0.15; 0.4 ]))
  in
  QCheck.make ~print:Parallel.Chaos.to_spec gen

let prop_sweep_deterministic workers =
  QCheck.Test.make
    ~name:(Printf.sprintf "table2 under random chaos, workers=%d" workers)
    ~count:4 chaos_arb
    (fun chaos ->
      let expected = Core.Experiments.table2 ~scale:Apps.Registry.Small ~jobs:1 () in
      let rows, st =
        Parallel.Remote.with_executor
          ~config:(config ~workers ~chaos ())
          ~run:(Core.Tasks.runner ())
          (fun ex ->
            ( Core.Tasks.table2 ~scale:Apps.Registry.Small ~ex (),
              ex.Parallel.Pool.ex_stats () ))
      in
      (* kill-after=1 is guaranteed fatal for every gen-0 worker that
         gets a task, so it must visibly exercise the retry path *)
      let retry_path_ok =
        chaos.Parallel.Chaos.kill_after <> Some 1 || st_field st "tasks_retried" > 0
      in
      rows = expected && retry_path_ok)

let suite =
  [
    ( "remote-executor",
      [
        Alcotest.test_case "submission order over processes" `Quick test_submission_order;
        Alcotest.test_case "kill-after: retry on worker loss" `Quick test_kill_after;
        Alcotest.test_case "hang: task deadline" `Quick test_hang_deadline;
        Alcotest.test_case "mute: heartbeat grace" `Quick test_mute_heartbeat;
        Alcotest.test_case "corrupt frame: checksum" `Quick test_corrupt_frame;
        Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
        Alcotest.test_case "crash-loop breaker" `Quick test_crash_loop_breaker;
        Alcotest.test_case "all slots broken: inline drain" `Quick
          test_all_broken_drains_inline;
        Alcotest.test_case "poison: inline fallback" `Quick test_poison_falls_back_inline;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_sweep_deterministic 1;
            prop_sweep_deterministic 2;
            prop_sweep_deterministic 4;
          ] );
  ]
