(* Unit and property tests for the simulation substrate: priority queue,
   RNG, engine, and network. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_ordering () =
  let q = Sim.Pqueue.create () in
  Sim.Pqueue.push q ~time:30 "c";
  Sim.Pqueue.push q ~time:10 "a";
  Sim.Pqueue.push q ~time:20 "b";
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "first" (Some (10, "a"))
    (Sim.Pqueue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "second" (Some (20, "b"))
    (Sim.Pqueue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "third" (Some (30, "c"))
    (Sim.Pqueue.pop q);
  check Alcotest.bool "empty" true (Sim.Pqueue.pop q = None)

let test_pqueue_tie_break () =
  (* same time: pops in insertion order, the determinism guarantee *)
  let q = Sim.Pqueue.create () in
  List.iter (fun v -> Sim.Pqueue.push q ~time:5 v) [ 1; 2; 3; 4; 5 ];
  let popped = List.init 5 (fun _ -> snd (Option.get (Sim.Pqueue.pop q))) in
  check (Alcotest.list Alcotest.int) "fifo at equal time" [ 1; 2; 3; 4; 5 ] popped

let test_pqueue_peek () =
  let q = Sim.Pqueue.create () in
  check (Alcotest.option Alcotest.int) "peek empty" None (Sim.Pqueue.peek_time q);
  Sim.Pqueue.push q ~time:42 ();
  check (Alcotest.option Alcotest.int) "peek" (Some 42) (Sim.Pqueue.peek_time q);
  check Alcotest.int "length" 1 (Sim.Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted by (time, insertion)" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Sim.Pqueue.create () in
      List.iteri (fun i time -> Sim.Pqueue.push q ~time i) times;
      let rec drain acc =
        match Sim.Pqueue.pop q with
        | None -> List.rev acc
        | Some (time, seq) -> drain ((time, seq) :: acc)
      in
      let popped = drain [] in
      let sorted = List.stable_sort (fun (t1, s1) (t2, s2) ->
          match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
          (List.mapi (fun i time -> (time, i)) times)
      in
      popped = sorted)

let test_pqueue_node_tie_break () =
  (* the full (time, node, seq) key: same time orders by node first,
     then per-queue insertion order within a node *)
  let q = Sim.Pqueue.create () in
  Sim.Pqueue.push ~node:2 q ~time:5 "n2";
  Sim.Pqueue.push ~node:0 q ~time:5 "n0";
  Sim.Pqueue.push ~node:1 q ~time:5 "n1a";
  Sim.Pqueue.push ~node:1 q ~time:5 "n1b";
  Sim.Pqueue.push ~node:3 q ~time:4 "early";
  let popped = List.init 5 (fun _ -> snd (Option.get (Sim.Pqueue.pop q))) in
  check
    (Alcotest.list Alcotest.string)
    "time, then node, then insertion"
    [ "early"; "n0"; "n1a"; "n1b"; "n2" ]
    popped

let test_pqueue_pop_clears_slot () =
  (* the vacated heap slot must not keep the popped value alive: a
     long-running engine pops millions of events whose payloads close
     over messages and pages *)
  let q = Sim.Pqueue.create () in
  let w = Weak.create 1 in
  let () =
    (* allocate in a local scope so no stack root survives below *)
    let v = Bytes.make 64 'x' in
    Weak.set w 0 (Some v);
    Sim.Pqueue.push q ~time:1 (Some v);
    Sim.Pqueue.push q ~time:2 None
  in
  ignore (Sim.Pqueue.pop q);
  Gc.full_major ();
  Gc.full_major ();
  check Alcotest.bool "popped value is collectable while the queue lives" true
    (Weak.get w 0 = None);
  check Alcotest.int "the other entry is still queued" 1 (Sim.Pqueue.length q)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:99 and b = Sim.Rng.create ~seed:99 in
  let xs = List.init 50 (fun _ -> Sim.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Sim.Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" xs ys

let test_rng_bounds () =
  let rng = Sim.Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Sim.Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_split_independent () =
  let root = Sim.Rng.create ~seed:5 in
  let a = Sim.Rng.split root and b = Sim.Rng.split root in
  let xs = List.init 20 (fun _ -> Sim.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Sim.Rng.int b 1_000_000) in
  check Alcotest.bool "distinct streams" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Sim.Rng.create ~seed:3 in
  let arr = Array.init 30 Fun.id in
  Sim.Rng.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 30 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_advance_interleaves () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  let mark pid = log := (pid, Sim.Engine.now engine) :: !log in
  let body_a _pid =
    Sim.Engine.advance 10;
    mark 0;
    Sim.Engine.advance 20;
    mark 0
  in
  let body_b _pid =
    Sim.Engine.advance 15;
    mark 1;
    Sim.Engine.advance 1;
    mark 1
  in
  ignore (Sim.Engine.spawn engine body_a);
  ignore (Sim.Engine.spawn engine body_b);
  Sim.Engine.run engine;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "interleaving by virtual time"
    [ (0, 10); (1, 15); (1, 16); (0, 30) ]
    (List.rev !log)

let test_engine_block_wake () =
  let engine = Sim.Engine.create () in
  let woke_at = ref (-1) in
  let sleeper_pid = ref (-1) in
  let sleeper _pid =
    Sim.Engine.block ~label:"test sleep";
    woke_at := Sim.Engine.now engine
  in
  let waker _pid =
    Sim.Engine.advance 500;
    Sim.Engine.wake engine !sleeper_pid
  in
  sleeper_pid := Sim.Engine.spawn engine sleeper;
  ignore (Sim.Engine.spawn engine waker);
  Sim.Engine.run engine;
  check Alcotest.int "woken at waker's time" 500 !woke_at

let test_engine_wake_before_block () =
  (* a wakeup that arrives before the block must not be lost *)
  let engine = Sim.Engine.create () in
  let finished = ref false in
  let pid = ref (-1) in
  let sleeper _pid =
    Sim.Engine.advance 100;
    Sim.Engine.block ~label:"late block";
    finished := true
  in
  let waker _pid = Sim.Engine.wake engine !pid in
  pid := Sim.Engine.spawn engine sleeper;
  ignore (Sim.Engine.spawn engine waker);
  Sim.Engine.run engine;
  check Alcotest.bool "sticky wakeup" true !finished

let test_engine_deadlock_detected () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.spawn engine (fun _ -> Sim.Engine.block ~label:"forever"));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      check Alcotest.bool "queue-drain diagnosis" false diagnosis.Sim.Engine.diag_stalled;
      check Alcotest.int "one live process" 1 diagnosis.Sim.Engine.diag_live;
      check Alcotest.bool "mentions label" true
        (Testutil.contains (Sim.Engine.diagnosis_to_string diagnosis) "forever")

let test_engine_deadlock_diagnostics () =
  (* registered subsystem reporters contribute lines to the diagnosis *)
  let engine = Sim.Engine.create () in
  Sim.Engine.add_diagnostic engine (fun () -> [ "subsystem: 3 requests stuck" ]);
  ignore (Sim.Engine.spawn engine (fun _ -> Sim.Engine.block ~label:"lost wakeup"));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      check (Alcotest.list Alcotest.string) "reporter lines"
        [ "subsystem: 3 requests stuck" ] diagnosis.Sim.Engine.diag_notes

let test_engine_stall_watchdog () =
  (* only thunks fire (a retransmission livelock): the watchdog must trip
     once the no-progress budget is exceeded *)
  let engine = Sim.Engine.create () in
  Sim.Engine.set_stall_budget engine (Some 1_000);
  ignore (Sim.Engine.spawn engine (fun _ -> Sim.Engine.block ~label:"starved"));
  let rec tick n = if n > 0 then Sim.Engine.schedule_after engine ~delay:100 (fun () -> tick (n - 1)) in
  Sim.Engine.schedule engine ~at:0 (fun () -> tick 100);
  (match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected stall Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      check Alcotest.bool "stalled diagnosis" true diagnosis.Sim.Engine.diag_stalled;
      check Alcotest.bool "within budget + one tick" true
        (diagnosis.Sim.Engine.diag_time <= 1_200));
  (* same run without live processes must NOT trip the watchdog *)
  let engine = Sim.Engine.create () in
  Sim.Engine.set_stall_budget engine (Some 1_000);
  let rec tick n = if n > 0 then Sim.Engine.schedule_after engine ~delay:100 (fun () -> tick (n - 1)) in
  Sim.Engine.schedule engine ~at:0 (fun () -> tick 100);
  Sim.Engine.run engine

let test_engine_progress_resets_watchdog () =
  (* a process that keeps advancing holds the watchdog off indefinitely *)
  let engine = Sim.Engine.create () in
  Sim.Engine.set_stall_budget engine (Some 1_000);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         for _ = 1 to 50 do
           Sim.Engine.advance 900
         done));
  Sim.Engine.run engine;
  check Alcotest.int "ran to completion" 45_000 (Sim.Engine.now engine)

let test_engine_many_procs () =
  (* the growable process table: spawn far past the initial capacity and
     wake by pid across the whole range *)
  let engine = Sim.Engine.create () in
  let n = 1_000 in
  let woken = Array.make n false in
  let pids =
    Array.init n (fun i ->
        Sim.Engine.spawn engine (fun _ ->
            Sim.Engine.block ~label:"mass";
            woken.(i) <- true))
  in
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 10;
         Array.iter (fun pid -> Sim.Engine.wake engine pid) pids));
  Sim.Engine.run engine;
  check Alcotest.bool "all woken" true (Array.for_all Fun.id woken)

let test_engine_exception_propagates () =
  let engine = Sim.Engine.create () in
  ignore (Sim.Engine.spawn engine (fun _ -> failwith "boom"));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> check Alcotest.string "payload" "boom" m

let test_engine_schedule_thunk () =
  let engine = Sim.Engine.create () in
  let fired = ref (-1) in
  Sim.Engine.schedule engine ~at:77 (fun () -> fired := Sim.Engine.now engine);
  Sim.Engine.run engine;
  check Alcotest.int "thunk time" 77 !fired

(* A small sharded workload exercising every cross-shard path: local
   advances, deferred observers, and cross-shard events at the
   lookahead bound. The observation log must be identical for any
   number of executing domains — that is the sharded engine's whole
   contract. *)
let sharded_observations jobs =
  let shards = 4 and lookahead = 100 in
  let engine = Sim.Engine.create () in
  Sim.Engine.set_sharded engine ~shards ~shard_of_pid:Fun.id ~lookahead;
  let log = ref [] in
  let note tag pid =
    Sim.Engine.defer engine (fun () ->
        log := (Sim.Engine.now engine, tag, pid) :: !log)
  in
  for p = 0 to shards - 1 do
    ignore
      (Sim.Engine.spawn engine (fun pid ->
           for k = 1 to 5 do
             Sim.Engine.advance ((10 * (pid + 1)) + k);
             note k pid;
             Sim.Engine.schedule_node engine
               ~node:((pid + 1) mod shards)
               ~at:(Sim.Engine.now engine + lookahead + k)
               (fun () -> note (100 + k) pid)
           done));
    ignore p
  done;
  (match jobs with
  | 1 -> Sim.Engine.run engine
  | jobs ->
      Parallel.Gang.with_gang ~jobs (fun gang ->
          Sim.Engine.set_batch_runner engine (Some (Parallel.Gang.run gang));
          Sim.Engine.run engine));
  List.rev !log

let test_engine_sharded_domain_count_invariant () =
  let obs = Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int) in
  let sequential = sharded_observations 1 in
  check Alcotest.int "the workload observed something" 40 (List.length sequential);
  check obs "2 domains, same observations" sequential (sharded_observations 2);
  check obs "3 domains, same observations" sequential (sharded_observations 3)

let test_engine_sharded_lookahead_enforced () =
  let engine = Sim.Engine.create () in
  Sim.Engine.set_sharded engine ~shards:2 ~shard_of_pid:Fun.id ~lookahead:100;
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 10;
         (* a cross-shard event below the lookahead floor: the barrier
            must reject it rather than silently break determinism *)
         Sim.Engine.schedule_node engine ~node:1 ~at:(Sim.Engine.now engine + 50)
           (fun () -> ())));
  ignore (Sim.Engine.spawn engine (fun _ -> Sim.Engine.advance 1));
  match Sim.Engine.run engine with
  | () -> Alcotest.fail "lookahead violation not detected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Gang                                                                *)

let test_gang_runs_every_round () =
  Parallel.Gang.with_gang ~jobs:2 (fun gang ->
      let counter = Atomic.make 0 in
      for _ = 1 to 500 do
        Parallel.Gang.run gang
          (List.init 8 (fun i -> (i, fun () -> ignore (Atomic.fetch_and_add counter 1))))
      done;
      check Alcotest.int "every thunk of every round ran" 4000 (Atomic.get counter))

let test_gang_static_placement () =
  Parallel.Gang.with_gang ~jobs:2 (fun gang ->
      check Alcotest.int "jobs" 2 (Parallel.Gang.jobs gang);
      let homes = Array.make 4 [] in
      for _round = 1 to 5 do
        Parallel.Gang.run gang
          (List.init 4 (fun i ->
               (i, fun () -> homes.(i) <- (Domain.self () :> int) :: homes.(i))))
      done;
      let home i =
        match homes.(i) with
        | d :: rest ->
            List.iter (check Alcotest.int "index stays on one domain" d) rest;
            d
        | [] -> Alcotest.failf "index %d never ran" i
      in
      check Alcotest.bool "indices 0 and 2 share slot 0" true (home 0 = home 2);
      check Alcotest.bool "indices 1 and 3 share slot 1" true (home 1 = home 3);
      check Alcotest.bool "the two slots are distinct domains" true (home 0 <> home 1))

let test_gang_slot_order_and_errors () =
  Parallel.Gang.with_gang ~jobs:2 (fun gang ->
      (* indices 0/2/4 land on slot 0 (the submitting domain): same-slot
         thunks must run in index order *)
      let log = ref [] in
      Parallel.Gang.run gang
        [
          (0, fun () -> log := 0 :: !log);
          (2, fun () -> log := 2 :: !log);
          (4, fun () -> log := 4 :: !log);
        ];
      check (Alcotest.list Alcotest.int) "same-slot thunks in index order" [ 0; 2; 4 ]
        (List.rev !log);
      (* a thunk failure surfaces after the round completes *)
      let other_ran = ref false in
      (match
         Parallel.Gang.run gang
           [ (0, fun () -> failwith "boom"); (1, fun () -> other_ran := true) ]
       with
      | () -> Alcotest.fail "thunk exception swallowed"
      | exception Failure msg -> check Alcotest.string "failure re-raised" "boom" msg);
      check Alcotest.bool "the round still completed" true !other_ran;
      (* and the gang stays usable afterwards *)
      Parallel.Gang.run gang [ (0, fun () -> ()); (1, fun () -> ()) ])

(* ------------------------------------------------------------------ *)
(* Net                                                                 *)

let test_net_latency_and_accounting () =
  let engine = Sim.Engine.create () in
  let cost = Sim.Cost.default in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine cost stats ~nodes:2 ~size_of:(fun _ -> 100) in
  let delivered_at = ref (-1) in
  Sim.Net.set_handler net ~node:1 (fun () -> delivered_at := Sim.Engine.now engine);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 1000;
         Sim.Net.send net ~src:0 ~dst:1 ()));
  Sim.Engine.run engine;
  check Alcotest.int "latency model" (1000 + Sim.Cost.message_ns cost ~bytes:100) !delivered_at;
  check Alcotest.int "message counted" 1 stats.Sim.Stats.messages;
  check Alcotest.int "bytes counted" 100 stats.Sim.Stats.bytes

let test_net_fifo_same_size () =
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine Sim.Cost.default stats ~nodes:2 ~size_of:(fun _ -> 64) in
  let received = ref [] in
  Sim.Net.set_handler net ~node:1 (fun v -> received := v :: !received);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         List.iter (fun v -> Sim.Net.send net ~src:0 ~dst:1 v) [ 1; 2; 3 ]));
  Sim.Engine.run engine;
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_net_recv_blocking () =
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let net = Sim.Net.create engine Sim.Cost.default stats ~nodes:2 ~size_of:(fun _ -> 8) in
  let got = ref 0 in
  (* pid 0 = node 0 receiver; recv assumes pid = node id *)
  ignore (Sim.Engine.spawn engine (fun _ -> got := Sim.Net.recv net ~node:0));
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 10;
         Sim.Net.send net ~src:1 ~dst:0 42));
  Sim.Engine.run engine;
  check Alcotest.int "received" 42 !got

(* ------------------------------------------------------------------ *)
(* Transport over a lossy wire                                         *)

let lossy_net ?(transport = Sim.Transport.default_config) ~plan ~seed ~nodes () =
  let engine = Sim.Engine.create () in
  let stats = Sim.Stats.create () in
  let root = Sim.Rng.create ~seed in
  let jitter_rng = Sim.Rng.split root in
  let fault_rng = Sim.Rng.split root in
  let net =
    Sim.Net.create ~rng:jitter_rng ~fault:plan ~fault_rng ~transport engine
      Sim.Cost.default stats ~nodes ~size_of:(fun _ -> 64)
  in
  (engine, stats, net)

let test_transport_delivers_under_loss () =
  let plan = { Sim.Fault.none with Sim.Fault.drop = 0.3; duplicate = 0.2; reorder = 0.3 } in
  let engine, stats, net = lossy_net ~plan ~seed:7 ~nodes:2 () in
  let received = ref [] in
  Sim.Net.set_handler net ~node:1 (fun v -> received := v :: !received);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         List.iter (fun v -> Sim.Net.send net ~src:0 ~dst:1 v) (List.init 50 Fun.id)));
  Sim.Engine.run engine;
  check (Alcotest.list Alcotest.int) "exactly once, in order" (List.init 50 Fun.id)
    (List.rev !received);
  check Alcotest.bool "wire actually lossy" true (stats.Sim.Stats.frames_dropped > 0);
  check Alcotest.bool "retransmissions happened" true (stats.Sim.Stats.retransmits > 0)

let test_transport_partition_heals () =
  (* frames sent into a partition are retransmitted through after it lifts *)
  let plan =
    {
      Sim.Fault.none with
      Sim.Fault.partitions =
        [ { Sim.Fault.p_a = 0; p_b = 1; p_from_ns = 0; p_until_ns = 30_000_000 } ];
    }
  in
  let engine, stats, net = lossy_net ~plan ~seed:11 ~nodes:2 () in
  let received = ref [] in
  Sim.Net.set_handler net ~node:1 (fun v -> received := v :: !received);
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         List.iter (fun v -> Sim.Net.send net ~src:0 ~dst:1 v) [ 1; 2; 3 ]));
  Sim.Engine.run engine;
  check (Alcotest.list Alcotest.int) "delivered after heal" [ 1; 2; 3 ] (List.rev !received);
  check Alcotest.bool "heal needed retransmits" true (stats.Sim.Stats.retransmits > 0)

let test_transport_retry_cap_diagnosed () =
  (* a permanently dead link exhausts the retry cap; the blocked receiver
     then surfaces as a structured deadlock diagnosis, not a livelock *)
  let plan =
    {
      Sim.Fault.none with
      Sim.Fault.partitions =
        [ { Sim.Fault.p_a = 0; p_b = 1; p_from_ns = 0; p_until_ns = max_int } ];
    }
  in
  let engine, stats, net = lossy_net ~plan ~seed:13 ~nodes:2 () in
  Sim.Engine.add_diagnostic engine (fun () -> Sim.Net.diagnostics net);
  ignore (Sim.Engine.spawn engine (fun _ -> ignore (Sim.Net.recv net ~node:0)));
  ignore
    (Sim.Engine.spawn engine (fun _ ->
         Sim.Engine.advance 10;
         Sim.Net.send net ~src:1 ~dst:0 42));
  (match Sim.Engine.run engine with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sim.Engine.Deadlock diagnosis ->
      let text = Sim.Engine.diagnosis_to_string diagnosis in
      check Alcotest.bool "names the blocked receiver" true
        (Testutil.contains text "net recv at node 0");
      check Alcotest.bool "reports the failed link" true (Testutil.contains text "FAILED"));
  check Alcotest.int "link declared failed" 1 stats.Sim.Stats.link_failures;
  (match Sim.Net.transport net with
  | Some transport ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
        "failed link id" [ (1, 0) ]
        (Sim.Transport.failed_links transport)
  | None -> Alcotest.fail "transport expected")

let test_transport_charges_retransmit_bytes () =
  (* the same workload must cost more wire bytes at 30% drop than at 0% *)
  let run plan seed =
    let engine, stats, net = lossy_net ~plan ~seed ~nodes:2 () in
    Sim.Net.set_handler net ~node:1 (fun _ -> ());
    ignore
      (Sim.Engine.spawn engine (fun _ ->
           List.iter (fun v -> Sim.Net.send net ~src:0 ~dst:1 v) (List.init 30 Fun.id)));
    Sim.Engine.run engine;
    stats
  in
  let clean = run Sim.Fault.none 3 in
  let lossy = run { Sim.Fault.none with Sim.Fault.drop = 0.3 } 3 in
  check Alcotest.bool "no retransmits on a clean wire" true
    (clean.Sim.Stats.retransmits = 0);
  check Alcotest.bool "retransmitted bytes charged" true
    (lossy.Sim.Stats.bytes > clean.Sim.Stats.bytes)

let prop_transport_exactly_once_fifo =
  (* the tentpole invariant: under an arbitrary seeded drop/dup/reorder
     plan, every link still delivers exactly once and in order *)
  QCheck.Test.make ~name:"transport: per-link FIFO + exactly-once under faults" ~count:60
    QCheck.(
      quad (int_bound 10_000) (int_bound 45 (* % *)) (int_bound 45) (1 -- 60))
    (fun (seed, drop_pct, dup_pct, n_msgs) ->
      let plan =
        {
          Sim.Fault.none with
          Sim.Fault.drop = float_of_int drop_pct /. 100.0;
          duplicate = float_of_int dup_pct /. 100.0;
          reorder = 0.3;
        }
      in
      let nodes = 3 in
      (* an effectively unbounded retry cap: the property is about the
         FIFO/exactly-once invariant, not the give-up policy, and at 45%
         drop the default cap of 20 is occasionally (and correctly)
         exhausted *)
      let transport =
        { Sim.Transport.default_config with Sim.Transport.max_retries = max_int }
      in
      let engine, stats, net = lossy_net ~transport ~plan ~seed ~nodes () in
      let received = Array.make (nodes * nodes) [] in
      for dst = 0 to nodes - 1 do
        Sim.Net.set_handler net ~node:dst (fun (src, v) ->
            let link = (src * nodes) + dst in
            received.(link) <- v :: received.(link))
      done;
      ignore
        (Sim.Engine.spawn engine (fun _ ->
             for v = 1 to n_msgs do
               (* every ordered pair of distinct nodes, interleaved *)
               for src = 0 to nodes - 1 do
                 for dst = 0 to nodes - 1 do
                   if src <> dst then Sim.Net.send net ~src ~dst (src, v)
                 done
               done
             done));
      Sim.Engine.run engine;
      let expected = List.init n_msgs (fun i -> i + 1) in
      let ok = ref (stats.Sim.Stats.link_failures = 0) in
      for src = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if src <> dst && List.rev received.((src * nodes) + dst) <> expected then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "sim:pqueue",
      [
        Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "tie-break fifo" `Quick test_pqueue_tie_break;
        Alcotest.test_case "peek/length" `Quick test_pqueue_peek;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        Alcotest.test_case "(time, node, seq) tie-break" `Quick test_pqueue_node_tie_break;
        Alcotest.test_case "pop clears the vacated slot" `Quick test_pqueue_pop_clears_slot;
      ] );
    ( "sim:rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
      ] );
    ( "sim:engine",
      [
        Alcotest.test_case "virtual-time interleaving" `Quick test_engine_advance_interleaves;
        Alcotest.test_case "block/wake" `Quick test_engine_block_wake;
        Alcotest.test_case "wake before block" `Quick test_engine_wake_before_block;
        Alcotest.test_case "deadlock detected" `Quick test_engine_deadlock_detected;
        Alcotest.test_case "deadlock diagnostics" `Quick test_engine_deadlock_diagnostics;
        Alcotest.test_case "stall watchdog" `Quick test_engine_stall_watchdog;
        Alcotest.test_case "progress resets watchdog" `Quick
          test_engine_progress_resets_watchdog;
        Alcotest.test_case "growable proc table" `Quick test_engine_many_procs;
        Alcotest.test_case "exception propagates" `Quick test_engine_exception_propagates;
        Alcotest.test_case "scheduled thunk" `Quick test_engine_schedule_thunk;
        Alcotest.test_case "sharded: domain-count invariant" `Quick
          test_engine_sharded_domain_count_invariant;
        Alcotest.test_case "sharded: lookahead enforced" `Quick
          test_engine_sharded_lookahead_enforced;
      ] );
    ( "sim:gang",
      [
        Alcotest.test_case "every round's thunks run" `Quick test_gang_runs_every_round;
        Alcotest.test_case "static placement" `Quick test_gang_static_placement;
        Alcotest.test_case "slot order and errors" `Quick test_gang_slot_order_and_errors;
      ] );
    ( "sim:net",
      [
        Alcotest.test_case "latency + accounting" `Quick test_net_latency_and_accounting;
        Alcotest.test_case "fifo same-size" `Quick test_net_fifo_same_size;
        Alcotest.test_case "blocking recv" `Quick test_net_recv_blocking;
      ] );
    ( "sim:transport",
      [
        Alcotest.test_case "delivers under loss" `Quick test_transport_delivers_under_loss;
        Alcotest.test_case "partition heals" `Quick test_transport_partition_heals;
        Alcotest.test_case "retry cap diagnosed" `Quick test_transport_retry_cap_diagnosed;
        Alcotest.test_case "retransmit bytes charged" `Quick
          test_transport_charges_retransmit_bytes;
        QCheck_alcotest.to_alcotest prop_transport_exactly_once_fifo;
      ] );
  ]
