(* Tests for the ATOM-analogue: synthetic binaries, the static
   elimination pass (Table 2), and the runtime watch list. *)

let check = Alcotest.check

let instruction ?(kind = Instrument.Binary.Load) addressing origin =
  { Instrument.Binary.kind; addressing; origin; site = "s" }

let test_classification_rules () =
  let open Instrument in
  let binary =
    Binary.make ~name:"t"
      [
        instruction Binary.Frame_pointer Binary.App_text;
        instruction Binary.Global_pointer Binary.App_text;
        instruction Binary.Computed (Binary.Library "libc");
        instruction Binary.Computed Binary.Cvm_runtime;
        instruction Binary.Computed Binary.App_text;
        instruction ~kind:Binary.Store Binary.Computed Binary.App_text;
      ]
  in
  let c = Static_analysis.classify binary in
  check Alcotest.int "stack" 1 c.Static_analysis.stack;
  check Alcotest.int "static" 1 c.Static_analysis.static_data;
  check Alcotest.int "library" 1 c.Static_analysis.library;
  check Alcotest.int "cvm" 1 c.Static_analysis.cvm;
  check Alcotest.int "instrumented (flat computed accesses stay)" 2 c.Static_analysis.instrumented;
  check Alcotest.int "total" 6 (Static_analysis.total c)

let test_proven_private_from_cfg () =
  (* a computed access the data-flow can trace to a private malloc is
     proven private; one reaching a shared malloc stays instrumented *)
  let open Instrument in
  let p =
    Ir.(
      proc ~name:"p" ~entry:"b"
        [
          block "b"
            [
              malloc_private ~dst:0 "arena";
              malloc_shared ~dst:1 "grid";
              load (Reg 0) ~site:"private_ld";
              store (Reg 1) ~site:"shared_st";
            ];
        ])
  in
  let c = Static_analysis.classify (Binary.make ~name:"t" ~procs:[ p ] []) in
  check Alcotest.int "proven private" 1 c.Static_analysis.proven_private;
  check Alcotest.int "instrumented" 1 c.Static_analysis.instrumented;
  check Alcotest.int "stack" 0 c.Static_analysis.stack

let test_library_always_eliminated () =
  (* even a frame-pointer access inside a library counts as library *)
  let open Instrument in
  let binary =
    Binary.make ~name:"t" [ instruction Binary.Frame_pointer (Binary.Library "libm") ]
  in
  let c = Static_analysis.classify binary in
  check Alcotest.int "library" 1 c.Static_analysis.library;
  check Alcotest.int "stack" 0 c.Static_analysis.stack

let test_paper_binaries_over_99_percent () =
  List.iter
    (fun name ->
      let app = Apps.Registry.make name in
      let c = Instrument.Static_analysis.classify (app.Apps.App.binary ()) in
      let eliminated = Instrument.Static_analysis.eliminated_fraction c in
      if eliminated < 0.99 then
        Alcotest.fail
          (Printf.sprintf "%s eliminates only %.2f%%" name (100.0 *. eliminated)))
    Apps.Registry.all_names

let test_paper_binary_counts () =
  (* the synthetic images carry the paper's Table 2 section counts *)
  let expect =
    [
      ("fft", (1285, 1496, 124716, 3910, 261));
      ("sor", (342, 1304, 48717, 3910, 126));
      ("tsp", (244, 1213, 48717, 3910, 350));
      ("water", (649, 1919, 124716, 3910, 528));
    ]
  in
  List.iter
    (fun (name, (stack, static_data, library, cvm, instrumented)) ->
      let app = Apps.Registry.make name in
      let c = Instrument.Static_analysis.classify (app.Apps.App.binary ()) in
      check Alcotest.int (name ^ " stack") stack c.Instrument.Static_analysis.stack;
      check Alcotest.int (name ^ " static") static_data
        c.Instrument.Static_analysis.static_data;
      check Alcotest.int (name ^ " library") library c.Instrument.Static_analysis.library;
      check Alcotest.int (name ^ " cvm") cvm c.Instrument.Static_analysis.cvm;
      check Alcotest.int (name ^ " inst") instrumented
        c.Instrument.Static_analysis.instrumented;
      (* the CFGs also carry computed accesses the data-flow proves
         private — on top of the paper's counts, never replacing them *)
      if c.Instrument.Static_analysis.proven_private <= 0 then
        Alcotest.fail (name ^ " proves no computed access private"))
    expect

let test_instrumented_sites () =
  let open Instrument in
  let binary =
    Binary.make ~name:"t"
      [
        { Binary.kind = Binary.Load; addressing = Binary.Computed; origin = Binary.App_text;
          site = "hot" };
        instruction Binary.Frame_pointer Binary.App_text;
      ]
  in
  check (Alcotest.list Alcotest.string) "sites" [ "hot" ]
    (Static_analysis.instrumented_sites binary)

let test_watch () =
  let watch = Instrument.Watch.create ~addrs:[ 100; 200 ] in
  check Alcotest.bool "watched" true (Instrument.Watch.watched watch 100);
  check Alcotest.bool "unwatched" false (Instrument.Watch.watched watch 300);
  Instrument.Watch.observe watch ~site:"a" ~addr:100 Proto.Race.Read;
  Instrument.Watch.observe watch ~site:"a" ~addr:100 Proto.Race.Read;
  Instrument.Watch.observe watch ~site:"b" ~addr:100 Proto.Race.Write;
  Instrument.Watch.observe watch ~site:"c" ~addr:300 Proto.Race.Write (* ignored *);
  let hits = Instrument.Watch.hits watch in
  check Alcotest.int "two sites" 2 (List.length hits);
  let reads = List.find (fun h -> h.Instrument.Watch.site = "a") hits in
  check Alcotest.int "count accumulates" 2 reads.Instrument.Watch.count;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.bool))
    "sites_for"
    [ ("a", false); ("b", true) ]
    (List.map
       (fun (site, kind) -> (site, kind = Proto.Race.Write))
       (Instrument.Watch.sites_for watch ~addr:100))

let suite =
  [
    ( "instrument",
      [
        Alcotest.test_case "classification rules" `Quick test_classification_rules;
        Alcotest.test_case "proven private from CFG" `Quick test_proven_private_from_cfg;
        Alcotest.test_case "library elimination" `Quick test_library_always_eliminated;
        Alcotest.test_case ">99% eliminated" `Quick test_paper_binaries_over_99_percent;
        Alcotest.test_case "table 2 counts" `Quick test_paper_binary_counts;
        Alcotest.test_case "instrumented sites" `Quick test_instrumented_sites;
        Alcotest.test_case "watch list" `Quick test_watch;
      ] );
  ]
