(* Benchmark regression gate.

     dune exec bench/compare.exe -- baseline.json current.json

   Both inputs are files written by [bench/main.exe --json]. The actual
   comparison lives in [Compare_core] (so the unit suite can test it);
   this file is only argument parsing and the exit code.

   Exit 1 on any failure: a wall-clock regression past the threshold, a
   drifted deterministic field, a baseline entry missing from the
   current run, or nothing comparable at all. [--ignore-wall] skips the
   wall check, for same-build comparisons like --jobs 1 vs --jobs N. *)

let () =
  let usage () =
    prerr_endline
      "usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT] [--ignore-wall] \
       [--ignore-sim-jobs]";
    exit 2
  in
  let threshold_pct = ref 15.0 in
  let ignore_wall = ref false in
  let ignore_sim_jobs = ref false in
  let rec parse paths = function
    | "--threshold" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some pct when pct > 0.0 -> threshold_pct := pct
        | _ -> usage ());
        parse paths rest
    | "--threshold" :: [] -> usage ()
    | "--ignore-wall" :: rest ->
        ignore_wall := true;
        parse paths rest
    | "--ignore-sim-jobs" :: rest ->
        (* for the --sim-jobs CI smoke: sim_jobs is part of the match
           key, so gating N domains against 1 domain needs it erased *)
        ignore_sim_jobs := true;
        parse paths rest
    | path :: rest -> parse (path :: paths) rest
    | [] -> List.rev paths
  in
  let baseline_path, current_path =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [ a; b ] -> (a, b)
    | _ -> usage ()
  in
  let load path =
    (* a malformed or missing input is usage error 2, not failure 1 — CI
       distinguishes "the gate tripped" from "the gate never ran" *)
    try Compare_core.load path
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  let baseline = load baseline_path and current = load current_path in
  let report =
    Compare_core.compare_runs ~threshold_pct:!threshold_pct ~ignore_wall:!ignore_wall
      ~ignore_sim_jobs:!ignore_sim_jobs ~baseline ~current ()
  in
  List.iter print_endline report.Compare_core.lines;
  if report.Compare_core.compared = 0 then begin
    Printf.printf "no comparable entries between %s and %s\n" baseline_path current_path;
    exit 1
  end;
  if report.Compare_core.failures > 0 then begin
    Printf.printf "%d failure(s) against %s\n" report.Compare_core.failures baseline_path;
    exit 1
  end
  else
    Printf.printf "all %d entries within %.0f%% of %s\n" report.Compare_core.compared
      !threshold_pct baseline_path
