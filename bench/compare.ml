(* Benchmark regression gate.

     dune exec bench/compare.exe -- baseline.json current.json

   Both inputs are files written by [bench/main.exe --json]. Sweep entries
   are matched on (app, scale, nprocs, detect, protocol); for every pair
   the gate checks that

     - wall-clock has not regressed by more than the threshold (default
       15%, [--threshold PCT]) — small absolute drifts under the noise
       floor (50 ms) never fail, so CI-sized runs are not flaky;
     - the run's observable outcome is unchanged: race count, memory
       checksum, simulated time and wire bytes must be equal, because the
       simulation is deterministic and any drift there is a behavior
       change, not noise.

   Entries present in only one file are reported but do not fail the
   gate, so the baseline can be extended without a lockstep update. *)

let threshold_pct = ref 15.0

let noise_floor_s = 0.050

type entry = {
  key : string * string * int * bool * string;  (* app, scale, nprocs, detect, protocol *)
  wall_s : float;
  sim_time_ns : int;
  races : int;
  mem_checksum : int;
  bytes : int;
}

let entry_of_json v =
  let open Bench_json in
  {
    key =
      ( to_string_exn (member "app" v),
        to_string_exn (member "scale" v),
        to_int_exn (member "nprocs" v),
        to_bool_exn (member "detect" v),
        to_string_exn (member "protocol" v) );
    wall_s = to_float_exn (member "wall_s" v);
    sim_time_ns = to_int_exn (member "sim_time_ns" v);
    races = to_int_exn (member "races" v);
    mem_checksum = to_int_exn (member "mem_checksum" v);
    bytes = to_int_exn (member "bytes" v);
  }

let load path =
  let v = Bench_json.of_file path in
  (match Bench_json.member "schema" v with
  | Bench_json.String "cvm-race-bench/1" -> ()
  | _ -> failwith (Printf.sprintf "%s: not a cvm-race-bench/1 file" path));
  Bench_json.to_list_exn (Bench_json.member "entries" v) |> List.map entry_of_json

let key_string (app, scale, nprocs, detect, protocol) =
  Printf.sprintf "%s/%s p=%d %s %s" app scale nprocs
    (if detect then "detect" else "no-detect")
    protocol

let () =
  let usage () =
    prerr_endline "usage: compare.exe BASELINE.json CURRENT.json [--threshold PCT]";
    exit 2
  in
  let rec parse paths = function
    | "--threshold" :: pct :: rest ->
        (match float_of_string_opt pct with
        | Some pct when pct > 0.0 -> threshold_pct := pct
        | _ -> usage ());
        parse paths rest
    | "--threshold" :: [] -> usage ()
    | path :: rest -> parse (path :: paths) rest
    | [] -> List.rev paths
  in
  let baseline_path, current_path =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [ a; b ] -> (a, b)
    | _ -> usage ()
  in
  let baseline = load baseline_path and current = load current_path in
  let failures = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> incr failures; Printf.printf "FAIL %s\n" msg) fmt in
  let compared = ref 0 in
  List.iter
    (fun current_entry ->
      match List.find_opt (fun b -> b.key = current_entry.key) baseline with
      | None -> Printf.printf "new  %s (not in baseline, skipped)\n" (key_string current_entry.key)
      | Some base ->
          incr compared;
          let name = key_string current_entry.key in
          let ratio = current_entry.wall_s /. Float.max base.wall_s 1e-9 in
          let regressed =
            current_entry.wall_s -. base.wall_s > noise_floor_s
            && ratio > 1.0 +. (!threshold_pct /. 100.0)
          in
          if regressed then
            fail "%s: wall %.3fs -> %.3fs (%.0f%% > %.0f%% threshold)" name base.wall_s
              current_entry.wall_s
              ((ratio -. 1.0) *. 100.0)
              !threshold_pct
          else
            Printf.printf "ok   %s: wall %.3fs -> %.3fs (%+.0f%%)\n" name base.wall_s
              current_entry.wall_s
              ((ratio -. 1.0) *. 100.0);
          if current_entry.races <> base.races then
            fail "%s: race count %d -> %d" name base.races current_entry.races;
          if current_entry.mem_checksum <> base.mem_checksum then
            fail "%s: memory checksum %d -> %d" name base.mem_checksum current_entry.mem_checksum;
          if current_entry.sim_time_ns <> base.sim_time_ns then
            fail "%s: simulated time %d -> %d ns" name base.sim_time_ns current_entry.sim_time_ns;
          if current_entry.bytes <> base.bytes then
            fail "%s: wire bytes %d -> %d" name base.bytes current_entry.bytes)
    current;
  List.iter
    (fun base ->
      if not (List.exists (fun c -> c.key = base.key) current) then
        Printf.printf "gone %s (in baseline only)\n" (key_string base.key))
    baseline;
  if !compared = 0 then begin
    Printf.printf "no comparable entries between %s and %s\n" baseline_path current_path;
    exit 1
  end;
  if !failures > 0 then begin
    Printf.printf "%d failure(s) against %s\n" !failures baseline_path;
    exit 1
  end
  else Printf.printf "all %d entries within %.0f%% of %s\n" !compared !threshold_pct baseline_path
