(* The benchmark regression gate's decision logic, split from the CLI so
   the unit suite can drive it on synthetic runs.

   Sweep entries are matched on (app, scale, nprocs, detect, elide,
   protocol, backend, sim_jobs) — [elide] defaults to false, [backend]
   to "lrc" and [sim_jobs] to 0 (the sequential engine) when the field
   is absent or null, so baselines recorded before instrumentation
   elision, the cache-coherent backends or intra-run parallelism
   existed still match. A --sim-jobs run only ever gates against a
   baseline recorded with the same --sim-jobs: the sharded engine's
   outcomes are identical for every domain count, but its event
   windowing differs from the legacy loop's simulated time, so
   like-for-like is the only fair comparison. For every pair the gate
   checks that

     - wall-clock has not regressed by more than the threshold (default
       15%) — small absolute drifts under the noise floor (50 ms) never
       fail, so CI-sized runs are not flaky; [ignore_wall] skips this
       check entirely, for comparing two runs of the same build (e.g.
       --jobs 1 vs --jobs N, where wall-clock legitimately differs);
     - the run's observable outcome is unchanged: race count, memory
       checksum, simulated time and wire bytes must be equal, because
       the simulation is deterministic and any drift there is a behavior
       change, not noise.

   An entry present only in the current run is fine (the suite grew).
   An entry present only in the baseline FAILS the gate: a sweep point
   that silently disappears is exactly how a regression hides — the
   baseline must be regenerated deliberately, not eroded. *)

let noise_floor_s = 0.050

(* every further deterministic integer field a sweep entry may carry;
   compared exactly, but only when present in BOTH runs, so baselines
   recorded before a counter existed still gate the fields they have *)
let extra_fields =
  [
    "messages";
    "fragments";
    "read_notice_bytes";
    "bitmap_round_bytes";
    "diffs_created";
    "diffs_gced";
    "pages_fetched";
    "intervals_created";
    "interval_comparisons";
    "bitmaps_requested";
    "shared_reads";
    "shared_writes";
    "private_accesses";
    "lock_acquires";
    "barriers";
    "elided_checks";
    "bus_transactions";
    "bus_reads";
    "bus_read_x";
    "bus_upgrades";
    "bus_updates";
    "bus_writebacks";
    "bus_syncs";
    "bus_words";
    "cache_hits";
    "cache_misses";
    "cache_evictions";
    "invalidations";
    "updates_applied";
  ]

type entry = {
  key : string * string * int * bool * bool * string * string * int;
      (* app, scale, nprocs, detect, elide, protocol, backend, sim_jobs
         (0 = sequential engine) *)
  wall_s : float;
  sim_time_ns : int;
  races : int;
  mem_checksum : int;
  bytes : int;
  extras : (string * int) list;
}

let entry_of_json v =
  let open Bench_json in
  {
    key =
      ( to_string_exn (member "app" v),
        to_string_exn (member "scale" v),
        to_int_exn (member "nprocs" v),
        to_bool_exn (member "detect" v),
        (match member "elide" v with Bool b -> b | _ -> false),
        to_string_exn (member "protocol" v),
        (match member "backend" v with String s -> s | _ -> "lrc"),
        (match member "sim_jobs" v with Int n -> n | _ -> 0) );
    wall_s = to_float_exn (member "wall_s" v);
    sim_time_ns = to_int_exn (member "sim_time_ns" v);
    races = to_int_exn (member "races" v);
    mem_checksum = to_int_exn (member "mem_checksum" v);
    bytes = to_int_exn (member "bytes" v);
    extras =
      List.filter_map
        (fun name ->
          match member name v with Int n -> Some (name, n) | _ -> None)
        extra_fields;
  }

let entries_of_json v =
  (match Bench_json.member "schema" v with
  | Bench_json.String "cvm-race-bench/1" -> ()
  | _ -> failwith "not a cvm-race-bench/1 file");
  Bench_json.to_list_exn (Bench_json.member "entries" v) |> List.map entry_of_json

let load path =
  try entries_of_json (Bench_json.of_file path) with
  | Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Bench_json.Parse_error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> failwith msg

let key_string (app, scale, nprocs, detect, elide, protocol, backend, sim_jobs) =
  Printf.sprintf "%s/%s p=%d %s%s %s%s%s" app scale nprocs
    (if detect then "detect" else "no-detect")
    (if elide then "+elide" else "")
    protocol
    (if backend = "lrc" then "" else " " ^ backend)
    (if sim_jobs = 0 then "" else Printf.sprintf " sim-jobs=%d" sim_jobs)

type report = { lines : string list; compared : int; failures : int }

let passed r = r.compared > 0 && r.failures = 0

let compare_runs ?(threshold_pct = 15.0) ?(ignore_wall = false) ?(ignore_sim_jobs = false)
    ~baseline ~current () =
  (* [ignore_sim_jobs] erases the sim_jobs key component on both sides,
     for the CI smoke that asserts the --sim-jobs contract itself: a
     sharded run at N domains vs the same run at 1 domain must agree on
     every deterministic field. Only meaningful together with runs that
     hold one sim_jobs value each — erasing the component from a mixed
     run would collide its own keys. *)
  let normalize e =
    if ignore_sim_jobs then
      let app, scale, nprocs, detect, elide, protocol, backend, _ = e.key in
      { e with key = (app, scale, nprocs, detect, elide, protocol, backend, 0) }
    else e
  in
  let baseline = List.map normalize baseline and current = List.map normalize current in
  let lines = ref [] and failures = ref 0 and compared = ref 0 in
  let emit fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        lines := ("FAIL " ^ s) :: !lines)
      fmt
  in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> b.key = cur.key) baseline with
      | None -> emit "new  %s (not in baseline, skipped)" (key_string cur.key)
      | Some base ->
          incr compared;
          let name = key_string cur.key in
          if ignore_wall then
            emit "ok   %s: wall ignored (%.3fs -> %.3fs)" name base.wall_s cur.wall_s
          else begin
            let ratio = cur.wall_s /. Float.max base.wall_s 1e-9 in
            let regressed =
              cur.wall_s -. base.wall_s > noise_floor_s
              && ratio > 1.0 +. (threshold_pct /. 100.0)
            in
            if regressed then
              fail "%s: wall %.3fs -> %.3fs (%.0f%% > %.0f%% threshold)" name base.wall_s
                cur.wall_s
                ((ratio -. 1.0) *. 100.0)
                threshold_pct
            else
              emit "ok   %s: wall %.3fs -> %.3fs (%+.0f%%)" name base.wall_s cur.wall_s
                ((ratio -. 1.0) *. 100.0)
          end;
          if cur.races <> base.races then fail "%s: race count %d -> %d" name base.races cur.races;
          if cur.mem_checksum <> base.mem_checksum then
            fail "%s: memory checksum %d -> %d" name base.mem_checksum cur.mem_checksum;
          if cur.sim_time_ns <> base.sim_time_ns then
            fail "%s: simulated time %d -> %d ns" name base.sim_time_ns cur.sim_time_ns;
          if cur.bytes <> base.bytes then fail "%s: wire bytes %d -> %d" name base.bytes cur.bytes;
          (* every drifted counter gets its own line — one run of the
             gate should name the full extent of a divergence, not just
             its first symptom *)
          List.iter
            (fun (field, b) ->
              match List.assoc_opt field cur.extras with
              | Some c when c <> b -> fail "%s: %s %d -> %d" name field b c
              | _ -> ())
            base.extras)
    current;
  List.iter
    (fun base ->
      if not (List.exists (fun c -> c.key = base.key) current) then
        fail "%s: in baseline but missing from current run" (key_string base.key))
    baseline;
  { lines = List.rev !lines; compared = !compared; failures = !failures }
