(** Decision logic of the benchmark regression gate (bench/compare.exe),
    split from the CLI so the unit suite can drive it on synthetic runs. *)

val noise_floor_s : float
(** Absolute wall-clock drift (50 ms) below which a slowdown never
    fails, however large the ratio — keeps CI-sized runs unflaky. *)

val extra_fields : string list
(** Every further deterministic integer field a sweep entry may carry
    (messages, diffs, interval counters, …). Compared exactly, but only
    when present in both runs, so older baselines still gate the fields
    they have. *)

type entry = {
  key : string * string * int * bool * bool * string * string * int;
      (** app, scale, nprocs, detect, elide, protocol, backend, sim_jobs
          — the match key; [elide] reads as false, [backend] as "lrc"
          and [sim_jobs] as 0 (the sequential engine) when absent or
          null, so older baselines still match, and a --sim-jobs run
          only gates against a baseline recorded with the same value *)
  wall_s : float;
  sim_time_ns : int;
  races : int;
  mem_checksum : int;
  bytes : int;
  extras : (string * int) list;
      (** the {!extra_fields} present in this entry, in list order *)
}

val entry_of_json : Bench_json.t -> entry

val entries_of_json : Bench_json.t -> entry list
(** Checks the ["cvm-race-bench/1"] schema marker; raises [Failure]
    otherwise. *)

val load : string -> entry list
(** [entries_of_json] over a file. Every failure — unreadable file,
    malformed JSON, wrong schema — raises [Failure] with the path
    prefixed, so callers need exactly one handler. *)

val key_string :
  string * string * int * bool * bool * string * string * int -> string

type report = {
  lines : string list;  (** human-readable, one per comparison or note *)
  compared : int;  (** entries present in both runs *)
  failures : int;
}

val passed : report -> bool
(** No failures and at least one comparable entry. *)

val compare_runs :
  ?threshold_pct:float ->
  ?ignore_wall:bool ->
  ?ignore_sim_jobs:bool ->
  baseline:entry list ->
  current:entry list ->
  unit ->
  report
(** Gate [current] against [baseline]. Wall-clock may regress up to
    [threshold_pct] (default 15%) before failing, and never fails under
    {!noise_floor_s}; [ignore_wall] (default false) skips the wall check
    for same-build comparisons such as [--jobs 1] vs [--jobs N].
    [ignore_sim_jobs] (default false) erases the sim_jobs key component
    on both sides, for the CI smoke that asserts the [--sim-jobs]
    contract: a sharded run at N domains gated against the same run at
    one domain — use it only with runs holding one sim_jobs value each.
    Deterministic fields (races, checksum, simulated time, wire bytes,
    and every {!extra_fields} counter present in both entries) must
    match exactly, and {e every} drifted field gets its own FAIL line —
    the gate names the full extent of a divergence in one run, not just
    its first symptom. Entries only in [current] are noted but pass;
    entries only in [baseline] are failures — a sweep point that
    disappears must be a deliberate baseline regeneration, not erosion. *)
