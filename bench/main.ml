(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks for the constant-time
   building blocks and an ablation for the section 6.5 optimization.

     dune exec bench/main.exe            -- everything, paper scale
     dune exec bench/main.exe -- table1  -- one experiment
     dune exec bench/main.exe -- --small all   -- reduced inputs (CI-sized)
     dune exec bench/main.exe -- sweep --json out.json   -- machine-readable
     dune exec bench/main.exe -- --jobs 4 sweep   -- fan runs over 4 domains

   Every experiment is a fan-out of independent simulation runs, so the
   harness runs them on a Parallel.Pool ([--jobs N], default the host's
   recommended domain count). Results are harvested in submission order
   and all rendering happens on the main domain, so the report and the
   JSON are identical whatever [--jobs] is; only the wall-clock and GC
   numbers (real measurements) move.

   Absolute numbers come from the simulator's calibrated cost model
   (DESIGN.md section 4); the comparison targets are the *shapes* reported
   in the paper, quoted under each table.

   With [--json FILE] the harness also writes a machine-readable record of
   the run: one entry per (app, nprocs, detect) sweep point with wall-clock
   (monotonic), simulated time, GC allocation counters and wire totals,
   plus the wall-clock of every table/figure section that ran. The schema
   is documented in docs/BENCH.md; bench/compare.exe diffs two such files
   and fails on regression. *)

let ppf = Format.std_formatter

let section_walls : (string * float) list ref = ref []

let current_section = ref ""

let section title =
  current_section := title;
  Format.fprintf ppf "@.=== %s ===@.@." title

(* Wall-clock via the monotonic clock (CLOCK_MONOTONIC under the hood):
   NTP steps and leap smearing cannot corrupt the JSON numbers. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let wall f =
  let t0 = now_s () in
  let result = f () in
  let dt = now_s () -. t0 in
  if !current_section <> "" then section_walls := (!current_section, dt) :: !section_walls;
  Format.fprintf ppf "(%.1fs)@." dt;
  result

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the operations the paper argues are cheap *)

let micro_tests () =
  let open Bechamel in
  let nprocs = 8 in
  let vc_a = Proto.Vclock.create nprocs and vc_b = Proto.Vclock.create nprocs in
  Array.iteri (fun i _ -> vc_a.(i) <- i * 3) vc_a;
  Array.iteri (fun i _ -> vc_b.(i) <- (i * 2) + 1) vc_b;
  let words = 512 in
  let bitmap_a = Mem.Bitmap.create words and bitmap_b = Mem.Bitmap.create words in
  List.iter (fun i -> Mem.Bitmap.set bitmap_a ((i * 7) mod words)) (List.init 64 Fun.id);
  List.iter (fun i -> Mem.Bitmap.set bitmap_b ((i * 11) mod words)) (List.init 64 Fun.id);
  let page_size = 4096 and word_size = 8 in
  let twin = Mem.Page.create ~page_size ~word_size in
  let current = Mem.Page.create ~page_size ~word_size in
  for i = 0 to 63 do
    Mem.Page.set_int64 current (i * 8) (Int64.of_int i)
  done;
  let diff = Mem.Diff.create ~page:0 ~twin ~current in
  let target = Mem.Page.create ~page_size ~word_size in
  (* a synthetic barrier epoch: 8 procs x 8 intervals, cross-proc concurrent *)
  let epoch_intervals =
    List.concat_map
      (fun proc ->
        List.map
          (fun k ->
            let index = k + 1 in
            let vc = Proto.Vclock.create nprocs in
            Proto.Vclock.set vc proc index;
            let interval = Proto.Interval.create ~proc ~index ~vc ~epoch:0 in
            Proto.Interval.add_write_page interval (proc mod 3);
            Proto.Interval.add_read_page interval ((proc + 1) mod 3);
            interval.Proto.Interval.closed <- true;
            interval)
          (List.init 8 Fun.id))
      (List.init nprocs Fun.id)
  in
  let first = List.hd epoch_intervals and tenth = List.nth epoch_intervals 9 in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"vclock-compare"
        (Staged.stage (fun () -> Proto.Vclock.concurrent vc_a vc_b));
      Test.make ~name:"interval-precedes"
        (Staged.stage (fun () -> Proto.Interval.precedes first tenth));
      Test.make ~name:"bitmap-intersect"
        (Staged.stage (fun () -> Mem.Bitmap.intersects bitmap_a bitmap_b));
      Test.make ~name:"bitmap-racy-words"
        (Staged.stage (fun () -> Mem.Bitmap.inter_indices bitmap_a bitmap_b));
      Test.make ~name:"diff-create"
        (Staged.stage (fun () -> Mem.Diff.create ~page:0 ~twin ~current));
      Test.make ~name:"diff-apply" (Staged.stage (fun () -> Mem.Diff.apply diff target));
      Test.make ~name:"concurrent-pairs-64"
        (Staged.stage (fun () -> Racedetect.Detector.concurrent_pairs epoch_intervals));
    ]

let run_micro () =
  let open Bechamel in
  section "Micro-benchmarks (Bechamel, real ns on this host)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (estimate :: _) -> Format.fprintf ppf "%-40s %12.1f ns/run@." name estimate
      | _ -> Format.fprintf ppf "%-40s %12s@." name "n/a")
    rows

(* ------------------------------------------------------------------ *)

let scale = ref Apps.Registry.Paper

(* Coherence backend for the tables/figures and the sweep; the
   separation experiment always runs all three. *)
let backend = ref "lrc"

(* Set once during flag parsing, before any pool exists; worker domains
   only ever read it. *)
let jobs = ref (Parallel.Pool.default_jobs ())

(* Intra-run parallelism (--sim-jobs): window-sharded engine domains
   inside each eligible simulation. Composes with --jobs — the total
   domain demand is the product — and is recorded per sweep entry so
   compare.exe only gates like against like. *)
let sim_jobs : int option ref = ref None

let scale_name () =
  match !scale with
  | Apps.Registry.Paper -> "paper"
  | Apps.Registry.Small -> "small"
  | Apps.Registry.Large -> "large"

let run_table1 () =
  section "Table 1";
  wall (fun () ->
      Core.Report.table1 ppf
        (Core.Experiments.table1 ?sim_jobs:!sim_jobs ~scale:!scale ~backend:!backend
           ~jobs:!jobs ()))

let run_table2 () =
  section "Table 2";
  wall (fun () -> Core.Report.table2 ppf (Core.Experiments.table2 ~scale:!scale ~jobs:!jobs ()))

let run_table3 () =
  section "Table 3";
  wall (fun () ->
      Core.Report.table3 ppf
        (Core.Experiments.table3 ?sim_jobs:!sim_jobs ~scale:!scale ~backend:!backend
           ~jobs:!jobs ()))

let run_figure3 () =
  section "Figure 3";
  wall (fun () ->
      Core.Report.figure3 ppf
        (Core.Experiments.figure3 ?sim_jobs:!sim_jobs ~scale:!scale ~backend:!backend
           ~jobs:!jobs ()))

let run_figure4 () =
  section "Figure 4";
  wall (fun () ->
      (* TSP's branch-and-bound tree is badly load-imbalanced at 2
         processors, which makes the full-scale point very slow to
         simulate; sweep it from 4 as the paper's own TSP curve is the
         noisiest of the four. *)
      let names = [ "fft"; "sor"; "water" ] in
      let rows =
        Core.Experiments.figure4 ?sim_jobs:!sim_jobs ~scale:!scale ~names ~backend:!backend
          ~jobs:!jobs ()
      in
      let tsp =
        Core.Experiments.figure4 ?sim_jobs:!sim_jobs ~scale:!scale ~procs:[ 4; 8 ]
          ~names:[ "tsp" ] ~backend:!backend ~jobs:!jobs ()
      in
      Core.Report.figure4 ppf (rows @ tsp))

let run_figure5 () =
  section "Figure 5";
  wall (fun () ->
      Core.Report.figure5 ppf
        (Core.Experiments.figure5_both ?sim_jobs:!sim_jobs ~jobs:!jobs ()))

let run_ablation () =
  section "Ablation: stores from diffs (section 6.5)";
  wall (fun () ->
      Core.Report.ablation ppf
        (Core.Experiments.stores_from_diffs_ablation_all ?sim_jobs:!sim_jobs ~scale:!scale
           ~jobs:!jobs [ "sor"; "water" ]))

let run_retention () =
  section "Ablation: single-run site retention (section 6.1)";
  wall (fun () ->
      Core.Report.retention ppf
        (Core.Experiments.site_retention_ablation_all ?sim_jobs:!sim_jobs ~scale:!scale
           ~jobs:!jobs [ "tsp"; "water" ]))

let run_protocols () =
  section "Protocol comparison (single-writer vs multi-writer vs home-based)";
  wall (fun () ->
      Core.Report.protocols ppf
        (Core.Experiments.protocol_comparison_all ?sim_jobs:!sim_jobs ~scale:!scale
           ~jobs:!jobs ()))

let run_faults () =
  section "Fault sweep: report stability over a lossy wire";
  wall (fun () ->
      Core.Report.faults ppf (Core.Experiments.fault_sweep_all ~scale:!scale ~jobs:!jobs ()))

(* ------------------------------------------------------------------ *)
(* The machine-readable sweep: one simulated run per (app, nprocs,
   detect) point, timed and bracketed by [Gc.quick_stat] so allocation
   pressure is part of the record. The measurement itself is
   [Core.Experiments.sweep_point] (self-contained, silent), so the same
   point runs on a pool domain or in a remote worker process; rendering
   happens here on the main domain, in submission order. Under
   [--jobs > 1] the GC deltas bill only the running domain's minor heap
   but share the major heap with concurrent points (under [--workers]
   each point gets a whole process heap), and wall-clock includes
   contention; both are measurement fields, not outcomes, and
   bench/compare.exe treats only the deterministic fields as gating. *)

let sweep_entries : Bench_json.t list ref = ref []

let executor_entry : Bench_json.t option ref = ref None

let json_of_sweep_point (sp : Core.Experiments.sweep_point) =
  let stats = sp.Core.Experiments.sp_stats in
  let open Bench_json in
  Obj
    [
      ("app", String sp.Core.Experiments.sp_app);
      ("scale", String sp.Core.Experiments.sp_scale);
      ("nprocs", Int sp.Core.Experiments.sp_nprocs);
      ("detect", Bool sp.Core.Experiments.sp_detect);
      ("elide", Bool sp.Core.Experiments.sp_elide);
      ("elided_checks", Int stats.Sim.Stats.elided_checks);
      ("protocol", String sp.Core.Experiments.sp_protocol);
      ("backend", String sp.Core.Experiments.sp_backend);
      ( "sim_jobs",
        match sp.Core.Experiments.sp_sim_jobs with Some n -> Int n | None -> Null );
      ("wall_s", Float sp.Core.Experiments.sp_wall_s);
      ("sim_time_ns", Int sp.Core.Experiments.sp_sim_time_ns);
      ("races", Int sp.Core.Experiments.sp_races);
      ("mem_checksum", Int sp.Core.Experiments.sp_mem_checksum);
      ("messages", Int stats.Sim.Stats.messages);
      ("fragments", Int stats.Sim.Stats.fragments);
      ("bytes", Int stats.Sim.Stats.bytes);
      ("read_notice_bytes", Int stats.Sim.Stats.read_notice_bytes);
      ("bitmap_round_bytes", Int stats.Sim.Stats.bitmap_round_bytes);
      ("diffs_created", Int stats.Sim.Stats.diffs_created);
      ("diffs_gced", Int stats.Sim.Stats.diffs_gced);
      ("pages_fetched", Int stats.Sim.Stats.pages_fetched);
      ("intervals_created", Int stats.Sim.Stats.intervals_created);
      ("interval_comparisons", Int stats.Sim.Stats.interval_comparisons);
      ("bitmaps_requested", Int stats.Sim.Stats.bitmaps_requested);
      ("shared_reads", Int stats.Sim.Stats.shared_reads);
      ("shared_writes", Int stats.Sim.Stats.shared_writes);
      ("private_accesses", Int stats.Sim.Stats.private_accesses);
      ("lock_acquires", Int stats.Sim.Stats.lock_acquires);
      ("barriers", Int stats.Sim.Stats.barriers);
      ("bus_transactions", Int stats.Sim.Stats.bus_transactions);
      ("bus_reads", Int stats.Sim.Stats.bus_reads);
      ("bus_read_x", Int stats.Sim.Stats.bus_read_x);
      ("bus_upgrades", Int stats.Sim.Stats.bus_upgrades);
      ("bus_updates", Int stats.Sim.Stats.bus_updates);
      ("bus_writebacks", Int stats.Sim.Stats.bus_writebacks);
      ("bus_syncs", Int stats.Sim.Stats.bus_syncs);
      ("bus_words", Int stats.Sim.Stats.bus_words);
      ("cache_hits", Int stats.Sim.Stats.cache_hits);
      ("cache_misses", Int stats.Sim.Stats.cache_misses);
      ("cache_evictions", Int stats.Sim.Stats.cache_evictions);
      ("invalidations", Int stats.Sim.Stats.invalidations);
      ("updates_applied", Int stats.Sim.Stats.updates_applied);
      ("minor_words", Float sp.Core.Experiments.sp_minor_words);
      ("promoted_words", Float sp.Core.Experiments.sp_promoted_words);
      ("major_words", Float sp.Core.Experiments.sp_major_words);
      ("minor_collections", Int sp.Core.Experiments.sp_minor_collections);
      ("major_collections", Int sp.Core.Experiments.sp_major_collections);
    ]

let line_of_sweep_point (sp : Core.Experiments.sweep_point) =
  Printf.sprintf
    "%-6s p=%-3d %-6s %s  %8.2fs wall  %10d ns sim  %9.2e minor words  %d races"
    sp.Core.Experiments.sp_app sp.Core.Experiments.sp_nprocs
    sp.Core.Experiments.sp_backend
    (if sp.Core.Experiments.sp_detect && sp.Core.Experiments.sp_elide then "det+elide"
     else if sp.Core.Experiments.sp_detect then "detect   "
     else "no-detect")
    sp.Core.Experiments.sp_wall_s sp.Core.Experiments.sp_sim_time_ns
    sp.Core.Experiments.sp_minor_words sp.Core.Experiments.sp_races

let sweep_procs : int list option ref = ref None

(* Remote-executor flags: 0 workers = in-process domains (--jobs). *)
let workers = ref 0
let chaos_spec = ref ""
let task_deadline = ref 600.0

let json_of_executor_stats (st : Parallel.Executor_stats.t) =
  let open Bench_json in
  Obj
    (("mode", String st.Parallel.Executor_stats.mode)
    :: ("workers", Int st.Parallel.Executor_stats.workers)
    :: List.map (fun (k, v) -> (k, Int v)) (Parallel.Executor_stats.fields st))

let run_sweep () =
  section
    (Printf.sprintf "Scale sweep (%s inputs): wall clock, allocation, wire totals"
       (scale_name ()));
  let procs =
    match !sweep_procs with
    | Some procs -> procs
    | None -> ( match !scale with Apps.Registry.Small -> [ 4; 8; 16 ] | _ -> [ 8; 16; 32 ])
  in
  let names =
    (* at the large tier only SOR/FFT/Water have enlarged inputs; TSP
       would silently rerun its paper input, so leave it out *)
    match !scale with
    | Apps.Registry.Large -> [ "fft"; "sor"; "water" ]
    | _ -> Apps.Registry.all_names
  in
  let points =
    List.concat_map
      (fun name ->
        List.map (fun nprocs -> (name, nprocs, true, false, !backend)) procs
        (* one uninstrumented point per app anchors the slowdown, and one
           elision point measures how much the static MHP analysis buys *)
        @ [
            (name, List.hd procs, false, false, !backend);
            (name, List.hd procs, true, true, !backend);
          ])
      names
  in
  wall (fun () ->
      let results =
        if !workers > 0 then begin
          let chaos =
            match Parallel.Chaos.parse !chaos_spec with
            | Ok plan -> plan
            | Error msg ->
                prerr_endline msg;
                exit 2
          in
          let config =
            {
              (Parallel.Remote.default_config ~workers:!workers) with
              Parallel.Remote.task_deadline_s = !task_deadline;
              chaos;
            }
          in
          Parallel.Remote.with_executor ~config
            ~run:(Core.Tasks.runner ~clock:now_s ())
            (fun ex ->
              let rows =
                Core.Tasks.sweep_points ?sim_jobs:!sim_jobs ~scale:!scale ~ex points
              in
              let st = ex.Parallel.Pool.ex_stats () in
              executor_entry := Some (json_of_executor_stats st);
              Format.eprintf "%a@." Parallel.Executor_stats.pp st;
              rows)
        end
        else
          Parallel.Pool.with_pool ~jobs:!jobs (fun pool ->
              Parallel.Pool.map_exn pool
                (fun (name, nprocs, detect, elide, backend) ->
                  Core.Experiments.sweep_point ?sim_jobs:!sim_jobs ~clock:now_s ~backend
                    ~scale:!scale ~nprocs ~detect ~elide name)
                points)
      in
      List.iter
        (fun sp ->
          sweep_entries := json_of_sweep_point sp :: !sweep_entries;
          Format.fprintf ppf "%s@." (line_of_sweep_point sp))
        results)

(* ------------------------------------------------------------------ *)
(* The separation experiment: the same barrier apps under all three
   backends as p scales. A DSM keeps caches consistent with messages
   (diffs, write notices, bitmap rounds over a wire); a cache-coherent
   bus does it with bus transactions and collects detection bitmaps
   through shared memory. The table puts the two traffic currencies side
   by side — messages/bytes versus bus transactions/words — so the
   paper's "coherency guarantees make online detection cheap" argument
   is visible as data. Points also land in the JSON sweep entries
   (keyed by backend), so compare.exe gates them like any other. *)

let separation_backends = [ "lrc"; "mesi"; "dragon" ]

let run_separation () =
  section "CC vs DSM separation: consistency traffic as p scales";
  let names = [ "sor"; "water" ] in
  let procs = [ 4; 8; 16 ] in
  let points =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun nprocs -> List.map (fun b -> (name, nprocs, b)) separation_backends)
          procs)
      names
  in
  wall (fun () ->
      let results =
        Parallel.Pool.with_pool ~jobs:!jobs (fun pool ->
            Parallel.Pool.map_exn pool
              (fun (name, nprocs, backend) ->
                Core.Experiments.sweep_point ?sim_jobs:!sim_jobs ~clock:now_s ~backend
                  ~scale:!scale ~nprocs ~detect:true ~elide:false name)
              points)
      in
      Format.fprintf ppf "%-6s %4s %-7s %10s %12s %10s %10s %6s@." "app" "p" "backend"
        "messages" "bytes" "bus-txns" "bus-words" "races";
      List.iter
        (fun (sp : Core.Experiments.sweep_point) ->
          let stats = sp.Core.Experiments.sp_stats in
          sweep_entries := json_of_sweep_point sp :: !sweep_entries;
          Format.fprintf ppf "%-6s %4d %-7s %10d %12d %10d %10d %6d@."
            sp.Core.Experiments.sp_app sp.Core.Experiments.sp_nprocs
            sp.Core.Experiments.sp_backend stats.Sim.Stats.messages
            stats.Sim.Stats.bytes stats.Sim.Stats.bus_transactions
            stats.Sim.Stats.bus_words sp.Core.Experiments.sp_races)
        results)

let json_out : string option ref = ref None

let write_json path =
  let open Bench_json in
  let v =
    Obj
      ([
         ("schema", String "cvm-race-bench/1");
         ("scale", String (scale_name ()));
         ("entries", List (List.rev !sweep_entries));
       ]
      @ (match !executor_entry with
        | Some ex -> [ ("executor", ex) ]
        | None -> [])
      @ [
          ( "sections",
            List
              (List.rev_map
                 (fun (name, dt) -> Obj [ ("name", String name); ("wall_s", Float dt) ])
                 !section_walls) );
        ])
  in
  to_file path v;
  Format.fprintf ppf "@.wrote %s@." path

let all () =
  run_table1 ();
  run_table2 ();
  run_table3 ();
  run_figure3 ();
  run_figure4 ();
  run_figure5 ();
  run_ablation ();
  run_retention ();
  run_protocols ();
  run_faults ();
  run_sweep ();
  run_separation ();
  run_micro ()

let () =
  (* if this process was spawned as a remote worker, serve tasks and exit *)
  Parallel.Remote.maybe_worker ~run:(Core.Tasks.runner ~clock:now_s ()) ();
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_flags = function
    | "--small" :: rest ->
        scale := Apps.Registry.Small;
        parse_flags rest
    | "--large" :: rest ->
        scale := Apps.Registry.Large;
        parse_flags rest
    | "--backend" :: name :: rest ->
        if not (Backends.known name) then begin
          Printf.eprintf "unknown backend %S (available: %s)\n" name
            (String.concat ", " Backends.all);
          exit 2
        end;
        backend := name;
        parse_flags rest
    | "--backend" :: [] ->
        prerr_endline "--backend requires a name (see --list-backends)";
        exit 2
    | "--list-backends" :: _ ->
        List.iter
          (fun name ->
            Printf.printf "%-8s %s\n" name
              (Option.value ~default:"" (Backends.describe name)))
          Backends.all;
        exit 0
    | "--json" :: path :: rest ->
        json_out := Some path;
        parse_flags rest
    | "--json" :: [] ->
        prerr_endline "--json requires a file argument";
        exit 2
    | "--procs" :: spec :: rest ->
        sweep_procs := Some (List.map int_of_string (String.split_on_char ',' spec));
        parse_flags rest
    | "--procs" :: [] ->
        prerr_endline "--procs requires a comma-separated list";
        exit 2
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ ->
            prerr_endline "--jobs requires a positive integer";
            exit 2);
        parse_flags rest
    | "--jobs" :: [] ->
        prerr_endline "--jobs requires a positive integer";
        exit 2
    | "--sim-jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> sim_jobs := Some n
        | _ ->
            prerr_endline "--sim-jobs requires a positive integer";
            exit 2);
        parse_flags rest
    | "--sim-jobs" :: [] ->
        prerr_endline "--sim-jobs requires a positive integer";
        exit 2
    | "--workers" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> workers := n
        | _ ->
            prerr_endline "--workers requires a positive integer";
            exit 2);
        parse_flags rest
    | "--workers" :: [] ->
        prerr_endline "--workers requires a positive integer";
        exit 2
    | "--chaos" :: spec :: rest ->
        chaos_spec := spec;
        parse_flags rest
    | "--chaos" :: [] ->
        prerr_endline "--chaos requires a plan spec (see docs/PARALLEL.md)";
        exit 2
    | "--task-deadline" :: s :: rest ->
        (match float_of_string_opt s with
        | Some s when s > 0.0 -> task_deadline := s
        | _ ->
            prerr_endline "--task-deadline requires a positive number of seconds";
            exit 2);
        parse_flags rest
    | "--task-deadline" :: [] ->
        prerr_endline "--task-deadline requires a positive number of seconds";
        exit 2
    | arg :: rest -> arg :: parse_flags rest
    | [] -> []
  in
  let args = parse_flags args in
  let dispatch = function
    | "table1" -> run_table1 ()
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "figure3" -> run_figure3 ()
    | "figure4" -> run_figure4 ()
    | "figure5" -> run_figure5 ()
    | "ablation" -> run_ablation ()
    | "protocols" -> run_protocols ()
    | "retention" -> run_retention ()
    | "faults" -> run_faults ()
    | "micro" -> run_micro ()
    | "sweep" -> run_sweep ()
    | "separation" -> run_separation ()
    | "all" -> all ()
    | other ->
        Format.fprintf ppf
          "unknown experiment %S (expected \
           table1|table2|table3|figure3|figure4|figure5|ablation|retention|protocols|faults|micro|sweep|separation|all)@."
          other;
        exit 2
  in
  (match args with [] -> all () | args -> List.iter dispatch args);
  match !json_out with Some path -> write_json path | None -> ()
