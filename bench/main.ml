(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks for the constant-time
   building blocks and an ablation for the section 6.5 optimization.

     dune exec bench/main.exe            -- everything, paper scale
     dune exec bench/main.exe -- table1  -- one experiment
     dune exec bench/main.exe -- --small all   -- reduced inputs (CI-sized)

   Absolute numbers come from the simulator's calibrated cost model
   (DESIGN.md section 4); the comparison targets are the *shapes* reported
   in the paper, quoted under each table. *)

let ppf = Format.std_formatter

let section title = Format.fprintf ppf "@.=== %s ===@.@." title

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Format.fprintf ppf "(%.1fs)@." (Unix.gettimeofday () -. t0);
  result

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the operations the paper argues are cheap *)

let micro_tests () =
  let open Bechamel in
  let nprocs = 8 in
  let vc_a = Proto.Vclock.create nprocs and vc_b = Proto.Vclock.create nprocs in
  Array.iteri (fun i _ -> vc_a.(i) <- i * 3) vc_a;
  Array.iteri (fun i _ -> vc_b.(i) <- (i * 2) + 1) vc_b;
  let words = 512 in
  let bitmap_a = Mem.Bitmap.create words and bitmap_b = Mem.Bitmap.create words in
  List.iter (fun i -> Mem.Bitmap.set bitmap_a ((i * 7) mod words)) (List.init 64 Fun.id);
  List.iter (fun i -> Mem.Bitmap.set bitmap_b ((i * 11) mod words)) (List.init 64 Fun.id);
  let page_size = 4096 and word_size = 8 in
  let twin = Mem.Page.create ~page_size ~word_size in
  let current = Mem.Page.create ~page_size ~word_size in
  for i = 0 to 63 do
    Mem.Page.set_int64 current (i * 8) (Int64.of_int i)
  done;
  let diff = Mem.Diff.create ~page:0 ~twin ~current in
  let target = Mem.Page.create ~page_size ~word_size in
  (* a synthetic barrier epoch: 8 procs x 8 intervals, cross-proc concurrent *)
  let epoch_intervals =
    List.concat_map
      (fun proc ->
        List.map
          (fun k ->
            let index = k + 1 in
            let vc = Proto.Vclock.create nprocs in
            Proto.Vclock.set vc proc index;
            let interval = Proto.Interval.create ~proc ~index ~vc ~epoch:0 in
            Proto.Interval.add_write_page interval (proc mod 3);
            Proto.Interval.add_read_page interval ((proc + 1) mod 3);
            interval.Proto.Interval.closed <- true;
            interval)
          (List.init 8 Fun.id))
      (List.init nprocs Fun.id)
  in
  let first = List.hd epoch_intervals and tenth = List.nth epoch_intervals 9 in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"vclock-compare"
        (Staged.stage (fun () -> Proto.Vclock.concurrent vc_a vc_b));
      Test.make ~name:"interval-precedes"
        (Staged.stage (fun () -> Proto.Interval.precedes first tenth));
      Test.make ~name:"bitmap-intersect"
        (Staged.stage (fun () -> Mem.Bitmap.intersects bitmap_a bitmap_b));
      Test.make ~name:"bitmap-racy-words"
        (Staged.stage (fun () -> Mem.Bitmap.inter_indices bitmap_a bitmap_b));
      Test.make ~name:"diff-create"
        (Staged.stage (fun () -> Mem.Diff.create ~page:0 ~twin ~current));
      Test.make ~name:"diff-apply" (Staged.stage (fun () -> Mem.Diff.apply diff target));
      Test.make ~name:"concurrent-pairs-64"
        (Staged.stage (fun () -> Racedetect.Detector.concurrent_pairs epoch_intervals));
    ]

let run_micro () =
  let open Bechamel in
  section "Micro-benchmarks (Bechamel, real ns on this host)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (estimate :: _) -> Format.fprintf ppf "%-40s %12.1f ns/run@." name estimate
      | _ -> Format.fprintf ppf "%-40s %12s@." name "n/a")
    rows

(* ------------------------------------------------------------------ *)

let scale = ref Apps.Registry.Paper

let run_table1 () =
  section "Table 1";
  wall (fun () -> Core.Report.table1 ppf (Core.Experiments.table1 ~scale:!scale ()))

let run_table2 () =
  section "Table 2";
  wall (fun () -> Core.Report.table2 ppf (Core.Experiments.table2 ~scale:!scale ()))

let run_table3 () =
  section "Table 3";
  wall (fun () -> Core.Report.table3 ppf (Core.Experiments.table3 ~scale:!scale ()))

let run_figure3 () =
  section "Figure 3";
  wall (fun () -> Core.Report.figure3 ppf (Core.Experiments.figure3 ~scale:!scale ()))

let run_figure4 () =
  section "Figure 4";
  wall (fun () ->
      (* TSP's branch-and-bound tree is badly load-imbalanced at 2
         processors, which makes the full-scale point very slow to
         simulate; sweep it from 4 as the paper's own TSP curve is the
         noisiest of the four. *)
      let names = [ "fft"; "sor"; "water" ] in
      let rows = Core.Experiments.figure4 ~scale:!scale ~names () in
      let tsp = Core.Experiments.figure4 ~scale:!scale ~procs:[ 4; 8 ] ~names:[ "tsp" ] () in
      Core.Report.figure4 ppf (rows @ tsp))

let run_figure5 () =
  section "Figure 5";
  wall (fun () -> Core.Report.figure5 ppf (Core.Experiments.figure5_both ()))

let run_ablation () =
  section "Ablation: stores from diffs (section 6.5)";
  wall (fun () ->
      Core.Report.ablation ppf
        (List.map
           (fun name -> Core.Experiments.stores_from_diffs_ablation ~scale:!scale name)
           [ "sor"; "water" ]))

let run_retention () =
  section "Ablation: single-run site retention (section 6.1)";
  wall (fun () ->
      Core.Report.retention ppf
        (List.map
           (fun name -> Core.Experiments.site_retention_ablation ~scale:!scale name)
           [ "tsp"; "water" ]))

let run_protocols () =
  section "Protocol comparison (single-writer vs multi-writer vs home-based)";
  wall (fun () ->
      let rows =
        List.concat_map
          (fun name -> Core.Experiments.protocol_comparison ~scale:!scale name)
          Apps.Registry.all_names
      in
      Core.Report.protocols ppf rows)

let run_faults () =
  section "Fault sweep: report stability over a lossy wire";
  wall (fun () -> Core.Report.faults ppf (Core.Experiments.fault_sweep_all ~scale:!scale ()))

let all () =
  run_table1 ();
  run_table2 ();
  run_table3 ();
  run_figure3 ();
  run_figure4 ();
  run_figure5 ();
  run_ablation ();
  run_retention ();
  run_protocols ();
  run_faults ();
  run_micro ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun arg ->
        if arg = "--small" then begin
          scale := Apps.Registry.Small;
          false
        end
        else true)
      args
  in
  let dispatch = function
    | "table1" -> run_table1 ()
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "figure3" -> run_figure3 ()
    | "figure4" -> run_figure4 ()
    | "figure5" -> run_figure5 ()
    | "ablation" -> run_ablation ()
    | "protocols" -> run_protocols ()
    | "retention" -> run_retention ()
    | "faults" -> run_faults ()
    | "micro" -> run_micro ()
    | "all" -> all ()
    | other ->
        Format.fprintf ppf
          "unknown experiment %S (expected \
           table1|table2|table3|figure3|figure4|figure5|ablation|retention|protocols|faults|micro|all)@."
          other;
        exit 2
  in
  match args with [] -> all () | args -> List.iter dispatch args
