(* A minimal JSON reader/writer for the benchmark pipeline.

   The toolchain this repo builds against has no JSON library baked in, and
   the pipeline's needs are narrow: emit benchmark entries from
   [bench/main.exe], read two such files back in [bench/compare.exe], and
   read golden equivalence records in the test suite. So this module
   implements exactly RFC 8259's value grammar (objects, arrays, strings,
   numbers, booleans, null) with no streaming, no options, and a parser
   that reports line/column on failure.

   Numbers parse as [Float] unless they are exact integers in range, so a
   checksum written as an int round-trips as an int. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(* Two-space indentation, keys in insertion order: the emitted files are
   checked in, so the layout must be stable under regeneration. *)
let rec emit buf ~indent v =
  let pad n = String.make (2 * n) ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf ~indent:(indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          escape_string buf key;
          Buffer.add_string buf ": ";
          emit buf ~indent:(indent + 1) value)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string v))

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min cur.pos (String.length cur.src) - 1 do
    if cur.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" !line !col msg))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> error cur (Printf.sprintf "expected %C, found %C" c got)
  | None -> error cur (Printf.sprintf "expected %C, found end of input" c)

let expect_keyword cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.src then error cur "truncated \\u escape";
            let hex = String.sub cur.src cur.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error cur "bad \\u escape"
            in
            cur.pos <- cur.pos + 4;
            (* the writer only emits \u for control characters; decode the
               BMP code point as UTF-8 so parse(print(v)) = v holds *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
            end;
            go ()
        | _ -> error cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek cur with Some c -> is_number_char c | None -> false) do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error cur (Printf.sprintf "bad number %S" text))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws cur;
          let key = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let value = parse_value cur in
          fields := (key, value) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields_loop ()
          | Some '}' -> advance cur
          | _ -> error cur "expected ',' or '}' in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let value = parse_value cur in
          items := value :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items_loop ()
          | Some ']' -> advance cur
          | _ -> error cur "expected ',' or ']' in array"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' -> String (parse_string_body cur)
  | Some 't' -> expect_keyword cur "true" (Bool true)
  | Some 'f' -> expect_keyword cur "false" (Bool false)
  | Some 'n' -> expect_keyword cur "null" Null
  | Some _ -> parse_number cur

let of_string src =
  let cur = { src; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  (match peek cur with None -> () | Some _ -> error cur "trailing garbage after value");
  v

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  of_string src

(* ------------------------------------------------------------------ *)
(* Accessors: total functions that raise [Parse_error] with a path-free
   but type-specific message, which is enough for the two consumers. *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_int_exn = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | v -> raise (Parse_error (Printf.sprintf "expected int, found %s" (to_string v)))

let to_float_exn = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> raise (Parse_error (Printf.sprintf "expected number, found %s" (to_string v)))

let to_string_exn = function
  | String s -> s
  | v -> raise (Parse_error (Printf.sprintf "expected string, found %s" (to_string v)))

let to_bool_exn = function
  | Bool b -> b
  | v -> raise (Parse_error (Printf.sprintf "expected bool, found %s" (to_string v)))

let to_list_exn = function
  | List items -> items
  | v -> raise (Parse_error (Printf.sprintf "expected array, found %s" (to_string v)))
